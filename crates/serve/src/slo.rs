//! The SLO layer: declarative objectives evaluated over `capman-obs`
//! registry snapshots, driving the service's operating mode.
//!
//! Each objective is enforced with the **floor-guarded ratio** that
//! `bench::gate` uses in its `FloorAsBaseline` mode: an observation
//! breaches when
//!
//! ```text
//! observed / max(objective, floor) - 1.0 > tolerance
//! ```
//!
//! The floor keeps near-zero objectives from turning measurement
//! noise into breaches (the same reason the perf gate guards tiny
//! baselines), and the tolerance mirrors the gate's practical-effect
//! floor. A cross-check test in `capman-bench` pins this arithmetic
//! against `gate::judge` so the two enforcement points cannot drift
//! apart.
//!
//! [`SloMonitor`] adds hysteresis on top: `escalate_after` consecutive
//! breached evaluations step the mode up (Normal → Degraded →
//! Shedding), `recover_after` consecutive clean ones step it back
//! down. The mode feeds back into admission quotas
//! ([`crate::admission::effective_quota`]).

use capman_obs::metrics::MetricsSnapshot;

/// The service's operating mode, set by the [`SloMonitor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ServiceMode {
    /// All SLOs holding; full quotas.
    Normal,
    /// Sustained breach; quotas halved.
    Degraded,
    /// Deep breach; quotas forced to the 1-per-window floor.
    Shedding,
}

impl ServiceMode {
    /// Stable lowercase label for metrics and reports.
    pub fn label(self) -> &'static str {
        match self {
            ServiceMode::Normal => "normal",
            ServiceMode::Degraded => "degraded",
            ServiceMode::Shedding => "shedding",
        }
    }

    /// Encode for an atomic cell.
    pub(crate) fn as_u8(self) -> u8 {
        match self {
            ServiceMode::Normal => 0,
            ServiceMode::Degraded => 1,
            ServiceMode::Shedding => 2,
        }
    }

    /// Decode from an atomic cell (unknown values read as Normal).
    pub(crate) fn from_u8(v: u8) -> Self {
        match v {
            1 => ServiceMode::Degraded,
            2 => ServiceMode::Shedding,
            _ => ServiceMode::Normal,
        }
    }

    fn escalate(self) -> Self {
        match self {
            ServiceMode::Normal => ServiceMode::Degraded,
            ServiceMode::Degraded | ServiceMode::Shedding => ServiceMode::Shedding,
        }
    }

    fn recover(self) -> Self {
        match self {
            ServiceMode::Shedding => ServiceMode::Degraded,
            ServiceMode::Degraded | ServiceMode::Normal => ServiceMode::Normal,
        }
    }
}

/// One declarative objective: the target value and the noise floor it
/// is guarded by, both in the metric's own unit.
#[derive(Debug, Clone, Copy)]
pub struct SloObjective {
    /// The target the observation is compared against.
    pub objective: f64,
    /// Baseline floor: observations are judged against
    /// `max(objective, floor)`, exactly like `FloorAsBaseline`.
    pub floor: f64,
}

/// The service's SLO spec over the three metrics the issue names.
#[derive(Debug, Clone, Copy)]
pub struct SloSpec {
    /// p99 of `serve_staleness_s` — simulated seconds an admitted
    /// request waited from first submission to the start of its solve.
    pub staleness_p99_s: SloObjective,
    /// `serve_queue_depth` — pending requests at evaluation time.
    pub queue_depth: SloObjective,
    /// p99 of `serve_solve_us` — background solve wall time.
    pub solve_p99_us: SloObjective,
}

impl Default for SloSpec {
    fn default() -> Self {
        SloSpec {
            staleness_p99_s: SloObjective {
                objective: 300.0,
                floor: 0.25,
            },
            queue_depth: SloObjective {
                objective: 32.0,
                floor: 1.0,
            },
            solve_p99_us: SloObjective {
                objective: 1e5,
                floor: 250.0,
            },
        }
    }
}

/// Monitor configuration: the spec plus the enforcement knobs.
#[derive(Debug, Clone, Copy)]
pub struct SloConfig {
    /// The objectives.
    pub spec: SloSpec,
    /// Breach tolerance on the floor-guarded ratio (mirrors the perf
    /// gate's 5% practical-effect floor).
    pub tolerance: f64,
    /// Consecutive breached evaluations before escalating one mode.
    pub escalate_after: u32,
    /// Consecutive clean evaluations before recovering one mode.
    pub recover_after: u32,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            spec: SloSpec::default(),
            tolerance: 0.05,
            escalate_after: 2,
            recover_after: 2,
        }
    }
}

/// One metric's judgement within a verdict.
#[derive(Debug, Clone)]
pub struct SloObservation {
    /// Which metric (stable name, e.g. `staleness_p99_s`).
    pub metric: &'static str,
    /// The value read from the registry snapshot.
    pub observed: f64,
    /// The objective it was judged against.
    pub objective: f64,
    /// `observed / max(objective, floor)`.
    pub ratio: f64,
    /// Did it breach (`ratio - 1 > tolerance`)?
    pub breached: bool,
}

/// The outcome of one [`SloMonitor::evaluate`] call.
#[derive(Debug, Clone)]
pub struct SloVerdict {
    /// The mode after this evaluation.
    pub mode: ServiceMode,
    /// Every metric's judgement.
    pub observations: Vec<SloObservation>,
    /// Did any metric breach this evaluation?
    pub breached: bool,
}

impl SloVerdict {
    /// Render `metric=observed/objective` pairs plus the mode — the
    /// one-line verdict the soak example prints.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for o in &self.observations {
            let state = if o.breached { "BREACH" } else { "ok" };
            out.push_str(&format!(
                "{}={:.3} (objective {:.3}, ratio {:.2}, {state})  ",
                o.metric, o.observed, o.objective, o.ratio
            ));
        }
        out.push_str(&format!("mode={}", self.mode.label()));
        out
    }
}

/// The `FloorAsBaseline` ratio: `observed / max(objective, floor)`,
/// with a zero/negative-denominator guard (ratio 0 — nothing to
/// enforce against). Kept as a free function so the bench cross-check
/// can call it directly.
pub fn floor_ratio(observed: f64, objective: f64, floor: f64) -> f64 {
    let denom = objective.max(floor);
    if denom <= 0.0 {
        return 0.0;
    }
    observed / denom
}

/// Evaluates the spec over registry snapshots and carries the
/// escalation/recovery streaks.
#[derive(Debug, Clone)]
pub struct SloMonitor {
    config: SloConfig,
    mode: ServiceMode,
    breach_streak: u32,
    ok_streak: u32,
}

impl SloMonitor {
    /// A monitor starting in [`ServiceMode::Normal`].
    pub fn new(config: SloConfig) -> Self {
        SloMonitor {
            config,
            mode: ServiceMode::Normal,
            breach_streak: 0,
            ok_streak: 0,
        }
    }

    /// The current mode.
    pub fn mode(&self) -> ServiceMode {
        self.mode
    }

    /// The configuration under enforcement.
    pub fn config(&self) -> &SloConfig {
        &self.config
    }

    /// Judge one registry snapshot and update the mode. Metrics the
    /// snapshot does not carry read as 0 (trivially within SLO) — a
    /// fresh service must not start life breached.
    pub fn evaluate(&mut self, snap: &MetricsSnapshot) -> SloVerdict {
        let staleness = hist_quantile(snap, "serve_staleness_s", 0.99);
        let depth = gauge_value(snap, "serve_queue_depth").max(0) as f64;
        let solve = hist_quantile(snap, "serve_solve_us", 0.99);
        let spec = self.config.spec;
        let observations = vec![
            self.check("staleness_p99_s", staleness, spec.staleness_p99_s),
            self.check("queue_depth", depth, spec.queue_depth),
            self.check("solve_p99_us", solve, spec.solve_p99_us),
        ];
        let breached = observations.iter().any(|o| o.breached);
        if breached {
            self.breach_streak += 1;
            self.ok_streak = 0;
            if self.breach_streak >= self.config.escalate_after {
                self.mode = self.mode.escalate();
                self.breach_streak = 0;
            }
        } else {
            self.ok_streak += 1;
            self.breach_streak = 0;
            if self.ok_streak >= self.config.recover_after {
                self.mode = self.mode.recover();
                self.ok_streak = 0;
            }
        }
        SloVerdict {
            mode: self.mode,
            observations,
            breached,
        }
    }

    fn check(&self, metric: &'static str, observed: f64, obj: SloObjective) -> SloObservation {
        let ratio = floor_ratio(observed, obj.objective, obj.floor);
        SloObservation {
            metric,
            observed,
            objective: obj.objective,
            ratio,
            breached: ratio - 1.0 > self.config.tolerance,
        }
    }
}

fn hist_quantile(snap: &MetricsSnapshot, name: &str, q: f64) -> f64 {
    snap.histograms
        .iter()
        .find(|h| h.name == name)
        .map_or(0.0, |h| h.quantile(q))
}

fn gauge_value(snap: &MetricsSnapshot, name: &str) -> i64 {
    snap.gauges
        .iter()
        .find(|(n, _, _)| n == name)
        .map_or(0, |(_, _, v)| *v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use capman_obs::Registry;

    fn snap_with(staleness: &[f64], depth: i64) -> MetricsSnapshot {
        let r = Registry::new();
        let h = r.histogram(
            "serve_staleness_s",
            "Queue wait",
            &[1.0, 10.0, 60.0, 300.0, 600.0],
        );
        for &v in staleness {
            h.observe(v);
        }
        r.gauge("serve_queue_depth", "Depth").set(depth);
        r.snapshot()
    }

    fn tight() -> SloConfig {
        SloConfig {
            spec: SloSpec {
                staleness_p99_s: SloObjective {
                    objective: 60.0,
                    floor: 0.25,
                },
                queue_depth: SloObjective {
                    objective: 8.0,
                    floor: 1.0,
                },
                solve_p99_us: SloObjective {
                    objective: 1e6,
                    floor: 250.0,
                },
            },
            tolerance: 0.05,
            escalate_after: 1,
            recover_after: 2,
        }
    }

    #[test]
    fn empty_snapshot_is_within_slo() {
        let mut monitor = SloMonitor::new(SloConfig::default());
        let verdict = monitor.evaluate(&Registry::new().snapshot());
        assert!(!verdict.breached, "a fresh service starts clean");
        assert_eq!(verdict.mode, ServiceMode::Normal);
        assert_eq!(verdict.observations.len(), 3);
    }

    #[test]
    fn breach_escalates_and_recovery_steps_back_down() {
        let mut monitor = SloMonitor::new(tight());
        // p99 lands in the 600 s bucket: 600/60 - 1 >> 5%.
        let bad = snap_with(&[500.0], 0);
        let good = snap_with(&[0.5], 0);
        assert!(monitor.evaluate(&bad).breached);
        assert_eq!(monitor.mode(), ServiceMode::Degraded, "escalate_after 1");
        monitor.evaluate(&bad);
        assert_eq!(monitor.mode(), ServiceMode::Shedding);
        monitor.evaluate(&bad);
        assert_eq!(monitor.mode(), ServiceMode::Shedding, "saturates");
        monitor.evaluate(&good);
        assert_eq!(
            monitor.mode(),
            ServiceMode::Shedding,
            "one clean eval is not enough"
        );
        monitor.evaluate(&good);
        assert_eq!(monitor.mode(), ServiceMode::Degraded, "recover_after 2");
        monitor.evaluate(&good);
        monitor.evaluate(&good);
        assert_eq!(monitor.mode(), ServiceMode::Normal);
    }

    #[test]
    fn queue_depth_gauge_is_enforced() {
        let mut monitor = SloMonitor::new(tight());
        let verdict = monitor.evaluate(&snap_with(&[], 9));
        let depth = verdict
            .observations
            .iter()
            .find(|o| o.metric == "queue_depth")
            .expect("judged");
        assert!(depth.breached, "9 / 8 - 1 = 12.5% > 5%");
        assert!(verdict.summary().contains("queue_depth"));
    }

    #[test]
    fn floor_guards_tiny_objectives() {
        // objective 0.01 would make observed 0.2 a 20x breach; the
        // 0.25 floor judges it as 0.8 — within SLO. Exactly the
        // FloorAsBaseline semantics.
        assert!(floor_ratio(0.2, 0.01, 0.25) < 1.0);
        assert_eq!(floor_ratio(0.5, 0.25, 0.25), 2.0);
        assert_eq!(floor_ratio(1.0, 0.0, 0.0), 0.0, "degenerate spec guards");
    }

    #[test]
    fn mode_codec_round_trips() {
        for mode in [
            ServiceMode::Normal,
            ServiceMode::Degraded,
            ServiceMode::Shedding,
        ] {
            assert_eq!(ServiceMode::from_u8(mode.as_u8()), mode);
        }
        assert_eq!(ServiceMode::from_u8(99), ServiceMode::Normal);
    }
}
