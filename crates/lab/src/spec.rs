//! The declarative experiment contract: `experiment.yaml` + `tasks.jsonl`.
//!
//! An *experiment* is a sweep grid: every task (a row of `tasks.jsonl`,
//! the dataset axis) is run under every *variant* (a configuration the
//! experiment compares), `repeats` times with distinct seeds. The spec
//! layer only parses and validates; execution lives in
//! [`crate::runner`]. See `EXPERIMENTS.md` for the file contract with a
//! worked fig12 example.
//!
//! ```yaml
//! name: fig12
//! description: every policy on every fig12 workload
//! design:
//!   repeats: 3
//!   base_seed: 42
//! runtime:
//!   horizon_s: 400000
//! variants:
//!   - name: capman
//!     policy: CAPMAN
//!     calibrator: {rho: 0.05, theta: 0.1, every_s: 1200}
//!   - name: practice
//!     policy: Practice
//! ```
//!
//! Tasks are one JSON object per line; only `task_id` is required —
//! everything else falls back to the evaluation defaults (Video on the
//! Nexus at the design seed):
//!
//! ```json
//! {"task_id": "video", "workload": "video", "phone": "Nexus", "seed": 7}
//! {"task_id": "fleet", "fleet": {"devices": 64, "workloads": ["video", "pcmark"]}}
//! ```

use capman_core::experiments::PolicyKind;
use capman_core::online::CalibratorSpec;
use capman_device::phone::PhoneProfile;
use capman_fleet::CalibrationMode;
use capman_workload::WorkloadKind;

use crate::json::{self, Json};
use crate::yaml;

/// A parsed `experiment.yaml`.
#[derive(Debug, Clone)]
pub struct ExperimentSpec {
    /// Experiment name (directory-friendly).
    pub name: String,
    /// Free-text description.
    pub description: String,
    /// Repetitions per (task × variant) cell; each rep shifts the seed.
    pub repeats: usize,
    /// Seed for tasks that do not pin their own.
    pub base_seed: u64,
    /// Default simulated horizon, seconds (`None`: the evaluation
    /// default of [`capman_core::config::SimConfig::paper`]).
    pub horizon_s: Option<f64>,
    /// The configurations under comparison.
    pub variants: Vec<Variant>,
}

/// One arm of the sweep.
#[derive(Debug, Clone)]
pub struct Variant {
    /// Variant name (unique within the experiment).
    pub name: String,
    /// The scheduling policy this arm runs.
    pub policy: PolicyKind,
    /// Calibrator override for CAPMAN arms (partial: unnamed fields
    /// keep the paper defaults).
    pub calibrator: Option<CalibratorSpec>,
    /// TEC override (`None`: the policy's evaluation default).
    pub tec: Option<bool>,
    /// Horizon override, seconds.
    pub horizon_s: Option<f64>,
    /// Calibration execution mode for fleet tasks.
    pub calibration: CalibrationMode,
    /// Run fleet tasks through the structure-of-arrays arena runner
    /// (plan-derived devices, streaming aggregation) instead of the
    /// roster runner. `arena: true` in the experiment YAML.
    pub arena: bool,
    /// Run fleet tasks against a resident calibration service (arena
    /// devices, admission-controlled backend) instead of an in-process
    /// pool. `serve: true` in the experiment YAML; implies the arena
    /// path and requires the CAPMAN policy.
    pub serve: bool,
}

/// One dataset row.
#[derive(Debug, Clone)]
pub struct Task {
    /// Stable identifier (unique within the dataset).
    pub id: String,
    /// Explicit seed (`None`: the design's `base_seed`).
    pub seed: Option<u64>,
    /// Horizon override, seconds.
    pub horizon_s: Option<f64>,
    /// What this task runs.
    pub kind: TaskKind,
}

/// The two trial shapes the harness executes.
#[derive(Debug, Clone)]
pub enum TaskKind {
    /// One discharge-cycle simulation (objective: `service_time_s`).
    Scenario {
        /// Workload generator.
        workload: WorkloadKind,
        /// Phone model.
        phone: PhoneProfile,
    },
    /// A sharded fleet run (objective: `devices_per_s`).
    Fleet {
        /// Total devices, split evenly across the workload cohorts.
        devices: usize,
        /// One cohort per workload.
        workloads: Vec<WorkloadKind>,
        /// Calibration cadence override, seconds.
        every_s: Option<f64>,
    },
}

impl ExperimentSpec {
    /// Parse an `experiment.yaml` document.
    pub fn from_yaml(src: &str) -> Result<ExperimentSpec, String> {
        let doc = yaml::parse(src).map_err(|e| format!("experiment.yaml: {e}"))?;
        ExperimentSpec::from_value(&doc)
    }

    fn from_value(doc: &Json) -> Result<ExperimentSpec, String> {
        if doc.as_obj().is_none() {
            return Err("experiment.yaml: document root must be a mapping".into());
        }
        let name = doc
            .str("name")
            .ok_or("experiment.yaml: missing `name`")?
            .to_string();
        let description = doc.str("description").unwrap_or_default().to_string();
        let design = doc.get("design");
        let repeats = match design.and_then(|d| d.num("repeats")) {
            Some(r) if r >= 1.0 && r.fract() == 0.0 => r as usize,
            Some(r) => {
                return Err(format!(
                    "design.repeats: expected a positive integer, got {r}"
                ))
            }
            None => 1,
        };
        let base_seed = match design.and_then(|d| d.num("base_seed")) {
            Some(s) if s >= 0.0 && s.fract() == 0.0 => s as u64,
            Some(s) => {
                return Err(format!(
                    "design.base_seed: expected a non-negative integer, got {s}"
                ))
            }
            None => 42,
        };
        let horizon_s = doc
            .get("runtime")
            .map(|r| positive(r, "runtime.horizon_s", "horizon_s"))
            .transpose()?
            .flatten();
        let variants_value = doc
            .get("variants")
            .and_then(Json::as_arr)
            .ok_or("experiment.yaml: missing `variants` list")?;
        if variants_value.is_empty() {
            return Err("experiment.yaml: `variants` must not be empty".into());
        }
        let mut variants = Vec::new();
        for (i, v) in variants_value.iter().enumerate() {
            variants.push(Variant::from_value(v, i)?);
        }
        for i in 0..variants.len() {
            for j in i + 1..variants.len() {
                if variants[i].name == variants[j].name {
                    return Err(format!("duplicate variant name {:?}", variants[i].name));
                }
            }
        }
        Ok(ExperimentSpec {
            name,
            description,
            repeats,
            base_seed,
            horizon_s,
            variants,
        })
    }
}

impl Variant {
    fn from_value(v: &Json, index: usize) -> Result<Variant, String> {
        let at = |what: &str| format!("variants[{index}]: {what}");
        if v.as_obj().is_none() {
            return Err(at("expected a mapping"));
        }
        let policy = match v.str("policy") {
            Some(p) => PolicyKind::parse(p).map_err(|e| at(&e))?,
            None => PolicyKind::Capman,
        };
        let name = v
            .str("name")
            .map(str::to_string)
            .unwrap_or_else(|| policy.label().to_lowercase());
        let calibrator = match v.get("calibrator") {
            None | Some(Json::Null) => None,
            Some(c) => {
                if c.as_obj().is_none() {
                    return Err(at("calibrator: expected a mapping"));
                }
                let mut spec = CalibratorSpec::paper();
                if let Some(rho) = c.num("rho") {
                    spec.rho = rho;
                }
                if let Some(theta) = c.num("theta") {
                    spec.theta = theta;
                }
                if let Some(every_s) = c.num("every_s") {
                    spec.every_s = every_s;
                }
                if let Some((key, _)) = c
                    .as_obj()
                    .unwrap()
                    .iter()
                    .find(|(k, _)| !matches!(k.as_str(), "rho" | "theta" | "every_s"))
                {
                    return Err(at(&format!("calibrator: unknown field {key:?}")));
                }
                Some(spec)
            }
        };
        if calibrator.is_some() && policy != PolicyKind::Capman {
            return Err(at("calibrator overrides only apply to the CAPMAN policy"));
        }
        let tec = match v.get("tec") {
            None | Some(Json::Null) => None,
            Some(Json::Bool(b)) => Some(*b),
            Some(_) => return Err(at("tec: expected a boolean")),
        };
        let horizon_s = positive(v, &at("horizon_s"), "horizon_s")?;
        let calibration = match v.str("calibration") {
            None => CalibrationMode::Pool,
            Some(m) if m.eq_ignore_ascii_case("pool") => CalibrationMode::Pool,
            Some(m) if m.eq_ignore_ascii_case("inline") => CalibrationMode::Inline,
            Some(m) => return Err(at(&format!("calibration: expected inline|pool, got {m:?}"))),
        };
        let arena = match v.get("arena") {
            None | Some(Json::Null) => false,
            Some(Json::Bool(b)) => *b,
            Some(_) => return Err(at("arena: expected a boolean")),
        };
        let serve = match v.get("serve") {
            None | Some(Json::Null) => false,
            Some(Json::Bool(b)) => *b,
            Some(_) => return Err(at("serve: expected a boolean")),
        };
        if serve && policy != PolicyKind::Capman {
            return Err(at("serve arms require the CAPMAN policy"));
        }
        Ok(Variant {
            name,
            policy,
            calibrator,
            tec,
            horizon_s,
            calibration,
            arena,
            serve,
        })
    }
}

impl Task {
    /// Parse a whole `tasks.jsonl` file (one JSON object per
    /// non-empty line).
    pub fn from_jsonl(src: &str) -> Result<Vec<Task>, String> {
        let mut tasks = Vec::new();
        for (i, line) in src.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let doc = json::parse(line).map_err(|e| format!("tasks.jsonl line {}: {e}", i + 1))?;
            tasks.push(
                Task::from_value(&doc).map_err(|e| format!("tasks.jsonl line {}: {e}", i + 1))?,
            );
        }
        if tasks.is_empty() {
            return Err("tasks.jsonl: no tasks".into());
        }
        for i in 0..tasks.len() {
            for j in i + 1..tasks.len() {
                if tasks[i].id == tasks[j].id {
                    return Err(format!("tasks.jsonl: duplicate task_id {:?}", tasks[i].id));
                }
            }
        }
        Ok(tasks)
    }

    fn from_value(doc: &Json) -> Result<Task, String> {
        if doc.as_obj().is_none() {
            return Err("expected a JSON object".into());
        }
        let id = doc.str("task_id").ok_or("missing `task_id`")?.to_string();
        let seed = match doc.num("seed") {
            Some(s) if s >= 0.0 && s.fract() == 0.0 => Some(s as u64),
            Some(s) => return Err(format!("seed: expected a non-negative integer, got {s}")),
            None => None,
        };
        let horizon_s = positive(doc, "horizon_s", "horizon_s")?;
        let kind = match doc.get("fleet") {
            Some(fleet) => {
                if fleet.as_obj().is_none() {
                    return Err("fleet: expected a mapping".into());
                }
                if doc.get("workload").is_some() || doc.get("phone").is_some() {
                    return Err("a fleet task cannot also set workload/phone".into());
                }
                let devices = match fleet.num("devices") {
                    Some(d) if d >= 2.0 && d.fract() == 0.0 => d as usize,
                    _ => return Err("fleet.devices: expected an integer >= 2".into()),
                };
                let names = fleet
                    .get("workloads")
                    .and_then(Json::as_arr)
                    .ok_or("fleet.workloads: expected a list of workload names")?;
                let mut workloads = Vec::new();
                for n in names {
                    let n = n
                        .as_str()
                        .ok_or("fleet.workloads: entries must be strings")?;
                    workloads.push(WorkloadKind::parse(n)?);
                }
                if workloads.is_empty() {
                    return Err("fleet.workloads: must not be empty".into());
                }
                if !devices.is_multiple_of(workloads.len()) {
                    return Err(format!(
                        "fleet.devices ({devices}) must divide evenly across {} cohorts",
                        workloads.len()
                    ));
                }
                let every_s = positive(fleet, "fleet.every_s", "every_s")?;
                TaskKind::Fleet {
                    devices,
                    workloads,
                    every_s,
                }
            }
            None => {
                let workload = match doc.str("workload") {
                    Some(w) => WorkloadKind::parse(w)?,
                    None => WorkloadKind::Video,
                };
                let phone = match doc.str("phone") {
                    Some(p) => PhoneProfile::by_name(p).ok_or_else(|| {
                        format!("unknown phone {p:?} (expected Nexus, Honor or Lenovo)")
                    })?,
                    None => PhoneProfile::nexus(),
                };
                TaskKind::Scenario { workload, phone }
            }
        };
        Ok(Task {
            id,
            seed,
            horizon_s,
            kind,
        })
    }
}

/// Read an optional positive-number field.
fn positive(doc: &Json, context: &str, key: &str) -> Result<Option<f64>, String> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Num(v)) if *v > 0.0 => Ok(Some(*v)),
        Some(_) => Err(format!("{context}: expected a positive number")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const YAML: &str = "\
name: fig12
description: the figure 12 sweep
design:
  repeats: 2
  base_seed: 7
runtime:
  horizon_s: 1500
variants:
  - name: capman-eager
    policy: CAPMAN
    calibrator: {every_s: 300}
  - name: practice
    policy: Practice
    tec: false
";

    #[test]
    fn parses_a_full_experiment() {
        let spec = ExperimentSpec::from_yaml(YAML).expect("valid spec");
        assert_eq!(spec.name, "fig12");
        assert_eq!(spec.repeats, 2);
        assert_eq!(spec.base_seed, 7);
        assert_eq!(spec.horizon_s, Some(1500.0));
        assert_eq!(spec.variants.len(), 2);
        let eager = &spec.variants[0];
        assert_eq!(eager.policy, PolicyKind::Capman);
        let cal = eager.calibrator.expect("calibrator override");
        assert_eq!(cal.every_s, 300.0);
        assert_eq!(
            cal.rho,
            CalibratorSpec::paper().rho,
            "partial override keeps defaults"
        );
        assert_eq!(spec.variants[1].tec, Some(false));
    }

    #[test]
    fn defaults_fill_in() {
        let spec = ExperimentSpec::from_yaml("name: tiny\nvariants:\n  - policy: Dual\n")
            .expect("minimal spec");
        assert_eq!(spec.repeats, 1);
        assert_eq!(spec.base_seed, 42);
        assert_eq!(spec.horizon_s, None);
        assert_eq!(spec.variants[0].name, "dual");
        assert!(spec.variants[0].calibrator.is_none());
    }

    #[test]
    fn rejects_bad_specs() {
        for (src, what) in [
            ("variants:\n  - policy: Dual\n", "missing name"),
            ("name: x\n", "missing variants"),
            ("name: x\nvariants: []\n", "empty variants"),
            ("name: x\nvariants:\n  - policy: fifo\n", "unknown policy"),
            (
                "name: x\nvariants:\n  - policy: Dual\n    calibrator: {rho: 0.5}\n",
                "calibrator on non-CAPMAN",
            ),
            (
                "name: x\nvariants:\n  - name: a\n  - name: a\n",
                "duplicate variant",
            ),
            (
                "name: x\nvariants:\n  - calibrator: {rh0: 0.5}\n",
                "unknown calibrator field",
            ),
            (
                "name: x\ndesign:\n  repeats: 0\nvariants:\n  - name: a\n",
                "zero repeats",
            ),
        ] {
            assert!(ExperimentSpec::from_yaml(src).is_err(), "accepted: {what}");
        }
    }

    #[test]
    fn parses_scenario_and_fleet_tasks() {
        let src = r#"{"task_id": "video", "workload": "video", "phone": "Nexus", "seed": 5}
{"task_id": "eta", "workload": "eta-50", "horizon_s": 900}

{"task_id": "fleet", "fleet": {"devices": 64, "workloads": ["video", "pcmark"], "every_s": 300}}
"#;
        let tasks = Task::from_jsonl(src).expect("valid tasks");
        assert_eq!(tasks.len(), 3);
        assert_eq!(tasks[0].seed, Some(5));
        match &tasks[1].kind {
            TaskKind::Scenario { workload, phone } => {
                assert_eq!(*workload, WorkloadKind::EtaStatic { eta: 50 });
                assert_eq!(phone.name, "Nexus", "phone defaults to the Nexus");
            }
            _ => panic!("expected a scenario task"),
        }
        match &tasks[2].kind {
            TaskKind::Fleet {
                devices,
                workloads,
                every_s,
            } => {
                assert_eq!(*devices, 64);
                assert_eq!(workloads.len(), 2);
                assert_eq!(*every_s, Some(300.0));
            }
            _ => panic!("expected a fleet task"),
        }
    }

    #[test]
    fn only_task_id_is_required() {
        let tasks = Task::from_jsonl("{\"task_id\": \"t0\"}\n").expect("minimal task");
        assert!(matches!(
            &tasks[0].kind,
            TaskKind::Scenario {
                workload: WorkloadKind::Video,
                ..
            }
        ));
        assert_eq!(tasks[0].seed, None);
    }

    #[test]
    fn rejects_bad_tasks() {
        for (src, what) in [
            ("{\"workload\": \"video\"}", "missing task_id"),
            ("{\"task_id\": \"a\"}\n{\"task_id\": \"a\"}", "duplicate id"),
            ("{\"task_id\": \"a\", \"workload\": \"fortnite\"}", "unknown workload"),
            ("{\"task_id\": \"a\", \"phone\": \"Pixel\"}", "unknown phone"),
            ("{\"task_id\": \"a\", \"fleet\": {\"devices\": 3, \"workloads\": [\"video\", \"pcmark\"]}}", "odd split"),
            ("{\"task_id\": \"a\", \"fleet\": {\"devices\": 4, \"workloads\": []}}", "no cohorts"),
            ("{\"task_id\": \"a\", \"workload\": \"video\", \"fleet\": {\"devices\": 4, \"workloads\": [\"video\"]}}", "both shapes"),
            ("not json", "not json"),
            ("", "empty dataset"),
        ] {
            assert!(Task::from_jsonl(src).is_err(), "accepted: {what}");
        }
    }
}
