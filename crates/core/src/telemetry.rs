//! Time-series telemetry (the signals behind Figs. 13 and 15).

use serde::{Deserialize, Serialize};

use capman_battery::chemistry::Class;

/// One telemetry sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Simulation time, seconds.
    pub time_s: f64,
    /// Total active power drawn from the pack, milliwatts.
    pub power_mw: f64,
    /// Hot-spot temperature, degC.
    pub hotspot_c: f64,
    /// Shell (skin) temperature, degC.
    pub shell_c: f64,
    /// Battery node temperature, degC.
    pub battery_c: f64,
    /// State of charge of the big cell.
    pub big_soc: f64,
    /// State of charge of the LITTLE cell (1.0 for single packs).
    pub little_soc: f64,
    /// The cell carrying the load.
    pub active: Class,
    /// Whether the TEC was energised.
    pub tec_on: bool,
    /// Terminal voltage of the active cell, volts.
    pub voltage_v: f64,
}

/// A sampled time series with summary statistics.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Telemetry {
    samples: Vec<Sample>,
}

impl Telemetry {
    /// An empty series.
    pub fn new() -> Self {
        Telemetry::default()
    }

    /// Append a sample.
    pub fn push(&mut self, sample: Sample) {
        self.samples.push(sample);
    }

    /// All samples in time order.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Maximum hot-spot temperature seen, degC.
    pub fn max_hotspot_c(&self) -> f64 {
        self.samples
            .iter()
            .map(|s| s.hotspot_c)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Mean hot-spot temperature, degC.
    pub fn mean_hotspot_c(&self) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        self.samples.iter().map(|s| s.hotspot_c).sum::<f64>() / self.samples.len() as f64
    }

    /// Mean active power, milliwatts.
    pub fn mean_power_mw(&self) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        self.samples.iter().map(|s| s.power_mw).sum::<f64>() / self.samples.len() as f64
    }

    /// Peak active power, milliwatts.
    pub fn max_power_mw(&self) -> f64 {
        self.samples
            .iter()
            .map(|s| s.power_mw)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Fraction of samples with the TEC energised.
    pub fn tec_duty(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().filter(|s| s.tec_on).count() as f64 / self.samples.len() as f64
    }

    /// Fraction of samples with the LITTLE cell active.
    pub fn little_share(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples
            .iter()
            .filter(|s| s.active == Class::Little)
            .count() as f64
            / self.samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: f64, power: f64, hot: f64, tec: bool, active: Class) -> Sample {
        Sample {
            time_s: t,
            power_mw: power,
            hotspot_c: hot,
            shell_c: 30.0,
            battery_c: 28.0,
            big_soc: 0.8,
            little_soc: 0.7,
            active,
            tec_on: tec,
            voltage_v: 3.7,
        }
    }

    #[test]
    fn summary_statistics() {
        let mut t = Telemetry::new();
        t.push(sample(0.0, 1000.0, 40.0, false, Class::Big));
        t.push(sample(30.0, 2000.0, 50.0, true, Class::Little));
        assert_eq!(t.len(), 2);
        assert!((t.mean_power_mw() - 1500.0).abs() < 1e-9);
        assert_eq!(t.max_power_mw(), 2000.0);
        assert_eq!(t.max_hotspot_c(), 50.0);
        assert!((t.mean_hotspot_c() - 45.0).abs() < 1e-9);
        assert!((t.tec_duty() - 0.5).abs() < 1e-12);
        assert!((t.little_share() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_series_is_safe() {
        let t = Telemetry::new();
        assert!(t.is_empty());
        assert_eq!(t.tec_duty(), 0.0);
        assert!(t.mean_power_mw().is_nan());
    }
}
