//! The V-edge step-response probe (Fig. 3).
//!
//! Xu et al. (NSDI'13) observed that when a new power demand arrives, the
//! battery output voltage first drops quickly and then rises back to a
//! level *below* the pre-demand voltage — the "V-edge". The CAPMAN paper
//! decomposes the curve into three areas:
//!
//! * **D1** — the transient dip below the post-recovery steady level
//!   (wasted overpotential; a LITTLE battery minimises it),
//! * **D2** — the permanent drop from the initial to the steady level,
//! * **D3** — the voltage recovered above the worst-case sag after the
//!   minimum (a big battery maximises it over long windows).
//!
//! The area `D3 - D1` is the power-saving potential that motivates
//! scheduling the right chemistry for each demand pattern.

use serde::{Deserialize, Serialize};

use crate::cell::Cell;

/// Configuration for a V-edge experiment: rest, then a surge, then a
/// settling tail at the base load.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VEdgeProbe {
    /// Base load before and after the surge, watts.
    pub base_w: f64,
    /// Surge load, watts.
    pub surge_w: f64,
    /// How long the base load runs before the surge, seconds.
    pub lead_s: f64,
    /// Surge duration, seconds.
    pub surge_s: f64,
    /// Settling tail after the surge, seconds.
    pub settle_s: f64,
    /// Sampling period (also the simulation step), seconds.
    pub sample_dt: f64,
}

impl Default for VEdgeProbe {
    fn default() -> Self {
        VEdgeProbe {
            base_w: 0.3,
            surge_w: 6.0,
            lead_s: 30.0,
            surge_s: 10.0,
            settle_s: 120.0,
            sample_dt: 0.5,
        }
    }
}

impl VEdgeProbe {
    /// Run the probe against a cell at the given temperature and record
    /// the terminal-voltage trace.
    ///
    /// # Panics
    ///
    /// Panics if any duration or the sampling period is not positive.
    pub fn run(&self, cell: &mut Cell, temp_c: f64) -> VEdgeTrace {
        assert!(self.sample_dt > 0.0, "sample_dt must be positive");
        assert!(
            self.lead_s > 0.0 && self.surge_s > 0.0 && self.settle_s > 0.0,
            "probe phases must have positive duration"
        );
        let mut samples = Vec::new();
        let mut t = 0.0;
        let run_phase =
            |cell: &mut Cell, load: f64, dur: f64, samples: &mut Vec<(f64, f64)>, t: &mut f64| {
                let n = (dur / self.sample_dt).round().max(1.0) as usize;
                for _ in 0..n {
                    let s = cell.step(load, self.sample_dt, temp_c);
                    *t += self.sample_dt;
                    samples.push((*t, s.voltage_v));
                }
            };
        run_phase(cell, self.base_w, self.lead_s, &mut samples, &mut t);
        let surge_start = t;
        run_phase(cell, self.surge_w, self.surge_s, &mut samples, &mut t);
        let surge_end = t;
        run_phase(cell, self.base_w, self.settle_s, &mut samples, &mut t);
        VEdgeTrace {
            samples,
            surge_start,
            surge_end,
        }
    }
}

/// A recorded voltage trace from a [`VEdgeProbe`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VEdgeTrace {
    /// `(time_s, terminal_voltage_v)` samples.
    pub samples: Vec<(f64, f64)>,
    /// Time at which the surge began.
    pub surge_start: f64,
    /// Time at which the surge ended.
    pub surge_end: f64,
}

/// The V-edge characteristics extracted from a trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VEdgeAnalysis {
    /// Voltage immediately before the surge, volts.
    pub v_initial: f64,
    /// Minimum voltage reached, volts.
    pub v_min: f64,
    /// Settled voltage at the end of the window, volts.
    pub v_steady: f64,
    /// Transient dip area below the steady level, volt-seconds.
    pub d1: f64,
    /// Permanent drop area (initial minus steady over the window), V*s.
    pub d2: f64,
    /// Recovered area above the minimum after the dip, volt-seconds.
    pub d3: f64,
}

impl VEdgeAnalysis {
    /// The paper's power-saving potential, `D3 - D1`, in volt-seconds.
    pub fn saving_potential(&self) -> f64 {
        self.d3 - self.d1
    }
}

impl VEdgeTrace {
    /// Decompose the trace into the D1/D2/D3 areas of Fig. 3.
    ///
    /// # Panics
    ///
    /// Panics if the trace has fewer than three samples.
    pub fn analysis(&self) -> VEdgeAnalysis {
        assert!(self.samples.len() >= 3, "trace too short to analyse");
        let dt = self.samples[1].0 - self.samples[0].0;
        let v_initial = self
            .samples
            .iter()
            .rev()
            .find(|(t, _)| *t <= self.surge_start)
            .map(|&(_, v)| v)
            .unwrap_or(self.samples[0].1);
        let after: Vec<&(f64, f64)> = self
            .samples
            .iter()
            .filter(|(t, _)| *t > self.surge_start)
            .collect();
        let (t_min, v_min) =
            after
                .iter()
                .fold((self.surge_start, f64::INFINITY), |(tm, vm), &&(t, v)| {
                    if v < vm {
                        (t, v)
                    } else {
                        (tm, vm)
                    }
                });
        let v_steady = after.last().map(|&&(_, v)| v).unwrap_or(v_initial);
        let window = after.len() as f64 * dt;

        let mut d1 = 0.0;
        let mut d3 = 0.0;
        for &&(t, v) in &after {
            d1 += (v_steady - v).max(0.0) * dt;
            if t >= t_min {
                d3 += (v - v_min).max(0.0) * dt;
            }
        }
        let d2 = (v_initial - v_steady).max(0.0) * window;
        VEdgeAnalysis {
            v_initial,
            v_min,
            v_steady,
            d1,
            d2,
            d3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chemistry::Chemistry;

    fn probe() -> VEdgeProbe {
        VEdgeProbe::default()
    }

    fn run(chem: Chemistry) -> VEdgeAnalysis {
        let mut cell = Cell::new(chem, 2.5);
        probe().run(&mut cell, 25.0).analysis()
    }

    #[test]
    fn vedge_shape_drop_then_partial_recovery() {
        let a = run(Chemistry::Nca);
        assert!(a.v_min < a.v_initial, "voltage must drop under surge");
        assert!(
            a.v_steady > a.v_min,
            "voltage must recover after the surge: steady={} min={}",
            a.v_steady,
            a.v_min
        );
        assert!(
            a.v_steady < a.v_initial,
            "recovery settles below the initial level"
        );
    }

    #[test]
    fn little_chemistry_minimizes_d1() {
        let lmo = run(Chemistry::Lmo);
        let nca = run(Chemistry::Nca);
        assert!(
            lmo.d1 < nca.d1,
            "LITTLE dip area must be smaller: LMO={} NCA={}",
            lmo.d1,
            nca.d1
        );
    }

    #[test]
    fn areas_are_non_negative() {
        for chem in Chemistry::ALL {
            let a = run(chem);
            assert!(a.d1 >= 0.0 && a.d2 >= 0.0 && a.d3 >= 0.0, "{chem}: {a:?}");
        }
    }

    #[test]
    fn deeper_dips_for_bigger_surges() {
        let mut small = Cell::new(Chemistry::Nca, 2.5);
        let mut large = Cell::new(Chemistry::Nca, 2.5);
        let gentle = VEdgeProbe {
            surge_w: 3.0,
            ..probe()
        }
        .run(&mut small, 25.0)
        .analysis();
        let harsh = VEdgeProbe {
            surge_w: 9.0,
            ..probe()
        }
        .run(&mut large, 25.0)
        .analysis();
        assert!(harsh.v_min < gentle.v_min);
    }

    #[test]
    fn saving_potential_is_d3_minus_d1() {
        let a = run(Chemistry::Lmo);
        assert!((a.saving_potential() - (a.d3 - a.d1)).abs() < 1e-12);
    }

    #[test]
    fn trace_sample_count_matches_phases() {
        let p = probe();
        let mut cell = Cell::new(Chemistry::Lmo, 2.5);
        let trace = p.run(&mut cell, 25.0);
        let expected = ((p.lead_s + p.surge_s + p.settle_s) / p.sample_dt).round() as usize;
        assert_eq!(trace.samples.len(), expected);
    }
}
