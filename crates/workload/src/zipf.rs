//! Zipf-distributed sampling for skewed demand arrivals.
//!
//! CAPMAN targets software whose demand arrivals are "frequent with a
//! skewed distribution" (Section III). We model inter-arrival gaps and
//! burst intensities with a Zipf law over a small support: a few gap
//! classes dominate, with a long tail of rare long gaps — the shape that
//! makes one battery chemistry preferable for the common case.

use rand::Rng;

/// A Zipf distribution over ranks `1..=n` with exponent `s`.
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    /// Cumulative probabilities per rank.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the distribution.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is not finite and positive.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "support must be non-empty");
        assert!(s.is_finite() && s > 0.0, "exponent must be positive");
        let weights: Vec<f64> = (1..=n).map(|k| (k as f64).powf(-s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        Zipf { cdf }
    }

    /// Sample a rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u) + 1
    }

    /// Probability of rank `k` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or beyond the support.
    pub fn pmf(&self, k: usize) -> f64 {
        assert!(k >= 1 && k <= self.cdf.len(), "rank out of support");
        if k == 1 {
            self.cdf[0]
        } else {
            self.cdf[k - 1] - self.cdf[k - 2]
        }
    }

    /// Support size `n`.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(10, 1.1);
        let total: f64 = (1..=10).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lower_ranks_are_more_likely() {
        let z = Zipf::new(8, 1.0);
        for k in 1..8 {
            assert!(z.pmf(k) > z.pmf(k + 1));
        }
    }

    #[test]
    fn samples_match_pmf_roughly() {
        let z = Zipf::new(5, 1.2);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 5];
        let n = 100_000;
        for _ in 0..n {
            counts[z.sample(&mut rng) - 1] += 1;
        }
        for k in 1..=5 {
            let freq = counts[k - 1] as f64 / n as f64;
            assert!(
                (freq - z.pmf(k)).abs() < 0.01,
                "rank {k}: {freq} vs {}",
                z.pmf(k)
            );
        }
    }

    #[test]
    fn sample_is_within_support() {
        let z = Zipf::new(3, 2.0);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let k = z.sample(&mut rng);
            assert!((1..=3).contains(&k));
        }
    }

    #[test]
    #[should_panic(expected = "support")]
    fn rejects_empty_support() {
        let _ = Zipf::new(0, 1.0);
    }
}
