//! The soak harness: PR 7's arena fleet as the service's load
//! generator.
//!
//! [`run_soak`] builds a multi-cohort [`FleetPlan`], hands the
//! [`CalibrationService`] to a [`DeviceArena`] as its calibration
//! backend (the same seam the in-process pool uses), and pumps
//! simulated time in sub-window slices: devices tick and submit, then
//! the manually-stepped service solves what admission let through, and
//! at every window boundary the SLO monitor judges the registry and
//! per-cohort publication progress is recorded.
//!
//! **Overload is a plan property**: every device of a cohort asks for a
//! calibration once per cadence window, the cohort's quota admits one,
//! so `devices_per_cohort` *is* the overload factor and drop-oldest
//! absorbs the rest — the expected shed fraction at overload `x` is
//! `(x-1)/x` while every cohort still publishes every window. That
//! last clause is the no-starvation contract; the report computes the
//! worst publication gap per cohort and [`SoakReport::starvation_free`]
//! asserts it never exceeded one window.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use capman_fleet::{CalibrationBackend, DeviceArena, FleetPlan, FleetProfile};
use capman_obs::export::{chrome_trace, metrics_json, prometheus_text};
use capman_obs::{CompletedTrace, FlightConfig, FlightRecorder, TraceDrain};
use capman_workload::WorkloadKind;

use crate::lanes::Lane;
use crate::service::{CalibrationService, ServiceConfig, ServiceCounters, PHASE_NAMES};
use crate::slo::ServiceMode;

/// Soak-run shape: the traffic plan and the service under test.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Tenant cohorts.
    pub cohorts: usize,
    /// Devices per cohort — the overload factor against a quota of 1.
    pub devices_per_cohort: usize,
    /// Cadence windows to run (horizon = `windows × window_s`).
    pub windows: u32,
    /// Window length, simulated seconds. Align with the cohorts'
    /// calibration cadence (`CalibratorSpec::paper().every_s`).
    pub window_s: f64,
    /// Service pumps per window: devices advance `window_s / pumps`
    /// simulated seconds between solve opportunities.
    pub pumps_per_window: u32,
    /// Base seed; cohort `c` derives its profile seed from it.
    pub seed: u64,
    /// Service configuration. `workers` is forced to 0 — the soak is
    /// deterministic by construction.
    pub service: ServiceConfig,
    /// Where the flight recorder dumps postmortem bundles. `None`
    /// keeps the recorder in-memory only (no bundles on disk).
    pub flight_dir: Option<PathBuf>,
}

impl Default for SoakConfig {
    fn default() -> Self {
        let mut service = ServiceConfig::default();
        service.admission.quota_per_window = 1;
        service.admission.window_s = 1200.0;
        SoakConfig {
            cohorts: 4,
            devices_per_cohort: 4,
            windows: 3,
            window_s: 1200.0,
            pumps_per_window: 8,
            seed: 0xCA11,
            service,
            flight_dir: None,
        }
    }
}

/// One cadence window's outcome.
#[derive(Debug, Clone, Copy)]
pub struct SoakWindow {
    /// Simulated end of the window.
    pub t_end_s: f64,
    /// Calibrations published during the window, all cohorts.
    pub published: u64,
    /// The least-served cohort's publications this window.
    pub min_cohort_published: u64,
    /// Mode after the window's SLO evaluation.
    pub mode: ServiceMode,
    /// Whether any SLO metric breached this window.
    pub breached: bool,
    /// Devices still alive at the end of the window.
    pub active_devices: usize,
}

/// Everything a soak run produced.
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// Per-window outcomes, in order.
    pub windows: Vec<SoakWindow>,
    /// Settled service counters.
    pub counters: ServiceCounters,
    /// Fraction of submissions whose payload never reached a solve.
    pub shed_fraction: f64,
    /// Worst gap, in windows, between consecutive publications of any
    /// cohort (measured from each cohort's first publication, over
    /// windows where the fleet was still alive).
    pub max_gap_windows: u32,
    /// Did every cohort publish at least once per window from its
    /// first publication to the end of the run (worst gap ≤ 1)?
    pub starvation_free: bool,
    /// p99 of first-submission-to-solve wait, simulated seconds.
    pub staleness_p99_s: f64,
    /// Same, split by the effective lane the pick was served on
    /// (indexed like [`Lane::ALL`]).
    pub lane_p99_s: [f64; 3],
    /// Mode at the end of the run.
    pub final_mode: ServiceMode,
    /// Whether any window breached.
    pub any_breach: bool,
    /// p99 of each critical-path phase, ordered like
    /// [`PHASE_NAMES`] (queue, lane, solve, publish→adopt).
    pub phase_p99_s: [f64; 4],
    /// Prometheus text scrape of the service registry.
    pub prometheus: String,
    /// JSON object of the service registry (flat key→value).
    pub metrics_json: String,
    /// Chrome-trace JSON of everything the flight recorder retained.
    pub trace_json: String,
    /// The flight recorder's retained span records — resolve exemplar
    /// trace ids against these.
    pub trace: TraceDrain,
    /// Completed causal traces, oldest first (bounded by the flight
    /// recorder's retention).
    pub completed_traces: Vec<CompletedTrace>,
    /// Postmortem bundles the flight recorder dumped (SLO flips).
    pub flight_bundles: Vec<PathBuf>,
    /// Host wall time of the whole soak, milliseconds.
    pub wall_ms: f64,
}

impl SoakReport {
    /// One line for logs: the load-shedding and starvation verdict.
    pub fn verdict_line(&self) -> String {
        format!(
            "shed {:.1}% of {} submissions, worst cohort gap {} window(s), starvation_free={}, p99 wait {:.1} s, mode={}",
            self.shed_fraction * 100.0,
            self.counters.submitted,
            self.max_gap_windows,
            self.starvation_free,
            self.staleness_p99_s,
            self.final_mode.label()
        )
    }
}

const SOAK_WORKLOADS: [WorkloadKind; 3] = [
    WorkloadKind::Pcmark,
    WorkloadKind::Video,
    WorkloadKind::EtaStatic { eta: 50 },
];

/// Build the soak's traffic plan: `cohorts` CAPMAN cohorts over mixed
/// workloads, horizons stretched to cover the soak.
fn soak_plan(config: &SoakConfig) -> FleetPlan {
    let horizon_s = config.window_s * f64::from(config.windows);
    let profiles = (0..config.cohorts)
        .map(|cohort| {
            let workload = SOAK_WORKLOADS[cohort % SOAK_WORKLOADS.len()];
            let mut profile = FleetProfile::capman(
                format!("soak-{cohort}"),
                workload,
                config.seed.wrapping_add(2 * cohort as u64),
            );
            profile.config.max_horizon_s = horizon_s;
            profile
        })
        .collect();
    FleetPlan::new(profiles, config.devices_per_cohort)
}

/// Run the soak: arena traffic against a manually-stepped service.
///
/// # Panics
///
/// Panics on a degenerate config (no cohorts, no devices, no windows).
pub fn run_soak(config: &SoakConfig) -> SoakReport {
    assert!(config.cohorts > 0, "soak needs cohorts");
    assert!(config.devices_per_cohort > 0, "soak needs devices");
    assert!(
        config.windows > 0 && config.pumps_per_window > 0,
        "soak needs windows"
    );
    let started = Instant::now();
    let plan = soak_plan(config);
    let mut service_config = config.service;
    service_config.workers = 0;
    let specs: Vec<_> = plan.profiles().iter().map(|p| p.calibrator).collect();
    let service = Arc::new(CalibrationService::new(&specs, service_config));
    // Always-on flight recorder: completed traces, rolling metric
    // snapshots and SLO verdicts ride in bounded memory; an SLO flip
    // into Degraded/Shedding (or a panic anywhere in the soak) dumps a
    // postmortem bundle into `flight_dir`.
    let flight = FlightRecorder::new(FlightConfig {
        dir: config.flight_dir.clone(),
        ..FlightConfig::default()
    });
    flight.arm_panic_hook();
    service.attach_flight(Arc::clone(&flight));
    let backend: Arc<dyn CalibrationBackend> = Arc::clone(&service) as _;
    let mut arena = DeviceArena::build(&plan, 0, plan.len(), Some(&backend));

    let mut last_seq = vec![0u64; config.cohorts];
    // Per-cohort gap bookkeeping: window index of the last publication,
    // u32::MAX while a cohort has not published yet.
    let mut last_pub_window = vec![u32::MAX; config.cohorts];
    let mut max_gap_windows = 0u32;
    let mut published_ever = vec![false; config.cohorts];
    let mut windows = Vec::with_capacity(config.windows as usize);

    'soak: for window in 0..config.windows {
        let window_start = config.window_s * f64::from(window);
        // Exemplars are per-window: each window's scrape carries the
        // slowest trace ids of *that* window, not of the whole run.
        service.registry().reset_exemplars();
        let mut active = arena.active();
        for pump in 1..=config.pumps_per_window {
            let t = window_start
                + config.window_s * f64::from(pump) / f64::from(config.pumps_per_window);
            // Devices tick (and submit) up to t, then the service
            // spends its solve budget at t.
            active = arena.run_window(t);
            service.run_pending(t);
        }
        let t_end = window_start + config.window_s;
        let mut published = 0u64;
        let mut min_cohort_published = u64::MAX;
        for cohort in 0..config.cohorts {
            let seq = backend.snapshot(cohort).seq;
            let delta = seq - last_seq[cohort];
            last_seq[cohort] = seq;
            published += delta;
            min_cohort_published = min_cohort_published.min(delta);
            if delta > 0 {
                // Gap between consecutive publication windows: 1 means
                // "published every window".
                if last_pub_window[cohort] != u32::MAX {
                    max_gap_windows = max_gap_windows.max(window - last_pub_window[cohort]);
                }
                last_pub_window[cohort] = window;
                published_ever[cohort] = true;
            }
        }
        let verdict = service.evaluate_slo();
        // Move the window's span records out of the tracer rings into
        // the flight recorder's bounded buffer before the rings wrap.
        flight.absorb(service.tracer().drain());
        windows.push(SoakWindow {
            t_end_s: t_end,
            published,
            min_cohort_published,
            mode: verdict.mode,
            breached: verdict.breached,
            active_devices: active,
        });
        if active == 0 {
            // Fleet exhausted (battery death): later windows carry no
            // traffic, so stop instead of reporting phantom starvation.
            break 'soak;
        }
    }
    // Cohorts that published and then went silent to the end of the run
    // extend their gap to the final window.
    let last_window = windows.len().saturating_sub(1) as u32;
    for cohort in 0..config.cohorts {
        if published_ever[cohort] && last_pub_window[cohort] < last_window {
            max_gap_windows = max_gap_windows.max(last_window - last_pub_window[cohort]);
        }
    }
    let starvation_free =
        published_ever.iter().all(|&p| p) && max_gap_windows <= 1 && !windows.is_empty();

    flight.absorb(service.tracer().drain());

    let snap = service.registry().snapshot();
    let quantile = |name: &str| {
        snap.histograms
            .iter()
            .find(|h| h.name == name)
            .map_or(0.0, |h| h.quantile(0.99))
    };
    let lane_p99_s = Lane::ALL.map(|lane| quantile(&format!("serve_staleness_{}_s", lane.label())));
    let phase_p99_s = PHASE_NAMES.map(quantile);
    let counters = service.counters();
    let trace = flight.trace_view();
    SoakReport {
        any_breach: windows.iter().any(|w| w.breached),
        final_mode: service.mode(),
        staleness_p99_s: quantile("serve_staleness_s"),
        lane_p99_s,
        phase_p99_s,
        shed_fraction: counters.shed_fraction(),
        max_gap_windows,
        starvation_free,
        prometheus: prometheus_text(&snap),
        metrics_json: metrics_json(&snap),
        trace_json: chrome_trace(&trace),
        trace,
        completed_traces: flight.completed(),
        flight_bundles: flight.bundles(),
        windows,
        counters,
        wall_ms: started.elapsed().as_secs_f64() * 1e3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_small_balanced_soak_is_starvation_free_and_accounted() {
        let config = SoakConfig {
            cohorts: 2,
            devices_per_cohort: 2,
            windows: 2,
            ..SoakConfig::default()
        };
        let report = run_soak(&config);
        assert!(!report.windows.is_empty());
        assert!(report.starvation_free, "{}", report.verdict_line());
        let c = report.counters;
        assert_eq!(
            c.submitted,
            c.admitted + c.coalesced + c.replaced + c.shed + c.backpressure,
            "admission identity"
        );
        assert!(c.completed > 0, "solves ran");
        assert!(report.prometheus.contains("serve_completed_total"));
        assert!(report.wall_ms >= 0.0);
    }
}
