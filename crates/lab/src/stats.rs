//! Small-sample statistics for the perf gate: Welch's unequal-variance
//! t-test with a hand-rolled Student-t CDF.
//!
//! The gate's question is one-sided: *is the candidate slower than the
//! baseline by more than noise?* Benchmark rep counts are small (3–10)
//! and the two arms' variances differ (different binaries, different
//! cache states), which is exactly the regime Welch's test is built
//! for: the statistic divides the mean difference by the combined
//! standard error and the Welch–Satterthwaite equation supplies an
//! effective degrees-of-freedom that discounts the noisier arm.
//!
//! The t CDF reduces to the regularized incomplete beta function
//! `I_x(a, b)`, computed by the standard Lentz continued fraction with
//! a Lanczos `ln Γ` — no external stats crate, accurate to ~1e-10 over
//! the df range benchmarks produce.

/// Sample mean. Empty slices read as 0 — callers gate on length first.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased (n−1) sample variance; 0 for fewer than two samples.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64
}

/// The outcome of one Welch's t-test between a baseline and a candidate
/// sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Welch {
    /// Baseline sample mean.
    pub mean_baseline: f64,
    /// Candidate sample mean.
    pub mean_candidate: f64,
    /// The t statistic `(mean_c − mean_b) / se`.
    pub t: f64,
    /// Welch–Satterthwaite effective degrees of freedom.
    pub df: f64,
    /// One-sided p-value for H₁: candidate mean > baseline mean.
    /// Small p ⇒ the candidate is credibly slower.
    pub p_greater: f64,
}

/// Welch's t-test. Returns `None` when either arm has fewer than two
/// samples (no variance estimate exists — the caller falls back to a
/// plain ratio check).
pub fn welch_t_test(baseline: &[f64], candidate: &[f64]) -> Option<Welch> {
    if baseline.len() < 2 || candidate.len() < 2 {
        return None;
    }
    let (nb, nc) = (baseline.len() as f64, candidate.len() as f64);
    let (mb, mc) = (mean(baseline), mean(candidate));
    let (vb, vc) = (variance(baseline), variance(candidate));
    let se2 = vb / nb + vc / nc;
    if se2 == 0.0 {
        // Two exactly-constant arms: the verdict is the sign of the
        // mean difference with certainty.
        let p = if mc > mb {
            0.0
        } else if mc < mb {
            1.0
        } else {
            0.5
        };
        return Some(Welch {
            mean_baseline: mb,
            mean_candidate: mc,
            t: if mc == mb {
                0.0
            } else {
                f64::INFINITY * (mc - mb).signum()
            },
            df: nb + nc - 2.0,
            p_greater: p,
        });
    }
    let t = (mc - mb) / se2.sqrt();
    // Welch–Satterthwaite: se⁴ / (Σ (vᵢ/nᵢ)² / (nᵢ−1)).
    let df = se2 * se2 / ((vb / nb).powi(2) / (nb - 1.0) + (vc / nc).powi(2) / (nc - 1.0));
    Some(Welch {
        mean_baseline: mb,
        mean_candidate: mc,
        t,
        df,
        p_greater: 1.0 - student_t_cdf(t, df),
    })
}

/// CDF of Student's t distribution with `df` degrees of freedom,
/// via the symmetric incomplete-beta identity
/// `P(T ≤ t) = 1 − ½ I_{df/(df+t²)}(df/2, ½)` for `t ≥ 0`.
pub fn student_t_cdf(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive");
    if t.is_nan() {
        return f64::NAN;
    }
    if t.is_infinite() {
        return if t > 0.0 { 1.0 } else { 0.0 };
    }
    let x = df / (df + t * t);
    let tail = 0.5 * incomplete_beta(0.5 * df, 0.5, x);
    if t >= 0.0 {
        1.0 - tail
    } else {
        tail
    }
}

/// Regularized incomplete beta function `I_x(a, b)`.
pub fn incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "beta parameters must be positive");
    assert!((0.0..=1.0).contains(&x), "x must be in [0, 1]");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    // Prefactor x^a (1−x)^b / (a B(a,b)), computed in log space.
    let front =
        (a * x.ln() + b * (1.0 - x).ln() + ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b)).exp();
    // The continued fraction converges fast for x ≤ (a+1)/(a+b+2); use
    // the symmetry I_x(a,b) = 1 − I_{1−x}(b,a) otherwise. `<=` matters:
    // at exact equality (e.g. the Cauchy median) both sides would defer
    // to each other forever.
    if x <= (a + 1.0) / (a + b + 2.0) {
        front * beta_continued_fraction(a, b, x) / a
    } else {
        1.0 - incomplete_beta(b, a, 1.0 - x)
    }
}

/// Lentz's method for the incomplete-beta continued fraction
/// (Numerical Recipes `betacf`).
fn beta_continued_fraction(a: f64, b: f64, x: f64) -> f64 {
    const EPS: f64 = 1e-14;
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=300 {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// `ln Γ(x)` for `x > 0` (Lanczos, g = 7, n = 9; ~15 significant
/// digits).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma domain is x > 0");
    const COEFFS: [f64; 8] = [
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection: Γ(x) Γ(1−x) = π / sin(πx).
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = 0.999_999_999_999_809_9_f64;
    for (i, &c) in COEFFS.iter().enumerate() {
        acc += c / (x + i as f64 + 1.0);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n−1)!
        let mut fact = 1.0_f64;
        for n in 1..=10 {
            assert!((ln_gamma(n as f64) - fact.ln()).abs() < 1e-10, "Γ({n}) off");
            fact *= n as f64;
        }
        // Γ(1/2) = √π.
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-10);
    }

    #[test]
    fn t_cdf_reference_points() {
        // Symmetry and the median.
        assert!((student_t_cdf(0.0, 7.0) - 0.5).abs() < 1e-12);
        for (t, df) in [(1.3, 4.0), (2.7, 11.0), (0.4, 29.0)] {
            let hi = student_t_cdf(t, df);
            let lo = student_t_cdf(-t, df);
            assert!((hi + lo - 1.0).abs() < 1e-10, "symmetry at t={t}, df={df}");
        }
        // Large df converges to the normal distribution: Φ(1.959964) ≈ 0.975.
        assert!((student_t_cdf(1.959_964, 1e6) - 0.975).abs() < 1e-4);
        // df = 1 is the Cauchy distribution: CDF(1) = 3/4.
        assert!((student_t_cdf(1.0, 1.0) - 0.75).abs() < 1e-10);
        // Tabulated: t_{0.95, 5} = 2.015048…
        assert!((student_t_cdf(2.015_048, 5.0) - 0.95).abs() < 1e-5);
        // Tabulated: t_{0.975, 10} = 2.228139…
        assert!((student_t_cdf(2.228_139, 10.0) - 0.975).abs() < 1e-5);
    }

    #[test]
    fn welch_flags_a_clear_shift_and_not_identical_arms() {
        let baseline = [100.0, 101.0, 99.0, 100.5, 99.5];
        let candidate = [200.0, 202.0, 198.0, 201.0, 199.0];
        let w = welch_t_test(&baseline, &candidate).expect("enough samples");
        assert!(w.p_greater < 1e-6, "p = {}", w.p_greater);
        assert!(w.mean_candidate > w.mean_baseline);

        let same = welch_t_test(&baseline, &baseline).expect("enough samples");
        assert!(
            (same.p_greater - 0.5).abs() < 1e-9,
            "p = {}",
            same.p_greater
        );
    }

    #[test]
    fn welch_needs_two_samples_per_arm() {
        assert!(welch_t_test(&[1.0], &[1.0, 2.0]).is_none());
        assert!(welch_t_test(&[1.0, 2.0], &[]).is_none());
    }

    #[test]
    fn welch_handles_zero_variance_arms() {
        let w = welch_t_test(&[5.0, 5.0, 5.0], &[9.0, 9.0, 9.0]).unwrap();
        assert_eq!(w.p_greater, 0.0);
        let w = welch_t_test(&[5.0, 5.0], &[5.0, 5.0]).unwrap();
        assert_eq!(w.p_greater, 0.5);
        let w = welch_t_test(&[9.0, 9.0], &[5.0, 5.0]).unwrap();
        assert_eq!(w.p_greater, 1.0);
    }

    #[test]
    fn welch_df_interpolates_between_arms() {
        // Equal variances and sizes: df ≈ n_b + n_c − 2.
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [11.0, 12.0, 13.0, 14.0];
        let w = welch_t_test(&a, &b).unwrap();
        assert!((w.df - 6.0).abs() < 1e-9, "df = {}", w.df);
    }

    #[test]
    fn welch_matches_a_worked_example() {
        // Hand-checked: means 19.37 vs 22.51, sample variances 1.4490
        // and 21.4721 → se² = 2.29211, t = 3.14/√2.29211 = 2.07413,
        // Welch–Satterthwaite df = 10.21. The one-sided p sits between
        // the tabulated t₀.₉₅,₁₀ = 1.812 (p = 0.05) and
        // t₀.₉₇₅,₁₀ = 2.228 (p = 0.025) anchors.
        let a = [19.8, 20.4, 19.6, 17.8, 18.5, 18.9, 18.3, 18.9, 19.5, 22.0];
        let b = [28.2, 26.6, 20.1, 23.3, 25.2, 22.1, 17.7, 27.6, 20.6, 13.7];
        let w = welch_t_test(&a, &b).unwrap();
        assert!((w.t - 2.074_13).abs() < 5e-4, "t = {}", w.t);
        assert!((w.df - 10.21).abs() < 0.05, "df = {}", w.df);
        assert!(
            w.p_greater > 0.025 && w.p_greater < 0.05,
            "p = {}",
            w.p_greater
        );
    }
}
