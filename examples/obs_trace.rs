//! Executable reference for the observability trace format: run one
//! calibration period (cold) plus one recalibration (warm-started) with
//! instrumentation enabled, then export every format the `obs` crate
//! produces.
//!
//! ```text
//! cargo run --release --example obs_trace --features obs
//! ```
//!
//! Writes three files to the working directory:
//!
//! * `obs_trace.json` — Chrome `trace_event` spans; open in
//!   `chrome://tracing` or <https://ui.perfetto.dev>. Expect a
//!   `calibrate` span per period with `bellman_level` children (one per
//!   quotient-ladder level) and a final `bellman_final` child.
//! * `obs_metrics.prom` — Prometheus text exposition of the registry.
//! * `obs_metrics.json` — flat JSON snapshot (the shape
//!   `perf_report::parse_rows(json, "metrics")` reads).

use capman::battery::chemistry::Class;
use capman::core::online::Calibrator;
use capman::core::profiler::Profiler;
use capman::device::fsm::Action;
use capman::device::states::DeviceState;

/// A profiler with enough observed transitions to pass the calibration
/// warm-up gate (mirrors the fixture the online-scheduler tests use).
fn seeded_profiler() -> Profiler {
    let mut p = Profiler::new();
    let asleep = DeviceState::asleep();
    let awake = DeviceState::awake();
    let awake_little = awake.with_battery(Class::Little);
    for _ in 0..40 {
        p.observe(awake, Action::SwitchToLittle, awake_little, 0.95, 2.5);
        p.observe(awake_little, Action::SwitchToBig, awake, 0.4, 2.5);
        p.observe(awake, Action::ScreenOff, asleep, 0.9, 0.3);
        p.observe(asleep, Action::ScreenOn, awake, 0.8, 2.0);
    }
    p
}

fn main() {
    // `required-features = ["obs"]` guarantees this, but make the
    // contract visible to readers of the example.
    assert!(
        capman::obs::compiled(),
        "build with --features obs to compile the instrumentation in"
    );
    capman::obs::set_enabled(true);

    let profiler = seeded_profiler();
    let mut calibrator = Calibrator::paper();
    // Period 1: cold calibration. Period 2: past the calibration
    // interval, warm-started from period 1's value vector.
    calibrator.recalibrate(0.0, &profiler, 1.0);
    calibrator.recalibrate(1300.0, &profiler, 1.0);

    let drain = capman::obs::drain();
    capman::obs::trace::validate(&drain.records).expect("spans are well-nested");
    let calibrations = drain
        .records
        .iter()
        .filter(|r| r.label == "calibrate")
        .count();
    assert_eq!(calibrations, 2, "one calibrate span per period");

    let trace = capman::obs::export::chrome_trace(&drain);
    std::fs::write("obs_trace.json", &trace).expect("write obs_trace.json");

    let snap = capman::obs::snapshot();
    std::fs::write(
        "obs_metrics.prom",
        capman::obs::export::prometheus_text(&snap),
    )
    .expect("write obs_metrics.prom");
    std::fs::write("obs_metrics.json", capman::obs::export::metrics_json(&snap))
        .expect("write obs_metrics.json");

    println!(
        "traced {} spans/events across {} calibration periods (0 dropped: {})",
        drain.records.len(),
        calibrations,
        drain.dropped == 0
    );
    let mut labels: Vec<&str> = drain.records.iter().map(|r| r.label).collect();
    labels.sort_unstable();
    labels.dedup();
    println!("span labels: {}", labels.join(", "));
    for (name, _, value) in &snap.counters {
        println!("  {name} = {value}");
    }
    println!("wrote obs_trace.json, obs_metrics.prom, obs_metrics.json");
}
