//! Simulation configuration for one discharge cycle.

use serde::{Deserialize, Serialize};

/// Configuration of a discharge-cycle simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Simulation step, seconds.
    pub dt_s: f64,
    /// Hard cap on simulated time, seconds (a cycle normally ends when
    /// the pack can no longer serve the demand).
    pub max_horizon_s: f64,
    /// Ambient temperature, degC.
    pub ambient_c: f64,
    /// Fraction of demand that may go unserved before a step counts as
    /// failing.
    pub shortfall_tolerance: f64,
    /// Consecutive failing seconds that end the service (the user gives
    /// up / the phone shuts down).
    pub shortfall_window_s: f64,
    /// Whether the TEC facility is installed (CAPMAN and Oracle have it;
    /// the state-of-practice baselines do not).
    pub tec_enabled: bool,
    /// TEC turn-on threshold, degC (45 in the paper; swept by the TEC
    /// ablation bench).
    pub tec_threshold_c: f64,
    /// Hot-spot temperature above which the CPU throttles, degC.
    pub throttle_threshold_c: f64,
    /// Utilisation multiplier applied while throttled.
    pub throttle_factor: f64,
    /// Telemetry sampling period, seconds.
    pub sample_every_s: f64,
}

impl SimConfig {
    /// The defaults used throughout the evaluation.
    pub fn paper() -> Self {
        SimConfig {
            dt_s: 1.0,
            max_horizon_s: 400_000.0,
            ambient_c: 25.0,
            shortfall_tolerance: 0.05,
            shortfall_window_s: 10.0,
            tec_enabled: false,
            tec_threshold_c: 45.0,
            throttle_threshold_c: 47.0,
            throttle_factor: 0.6,
            sample_every_s: 30.0,
        }
    }

    /// The paper configuration with the TEC facility installed.
    pub fn paper_with_tec() -> Self {
        SimConfig {
            tec_enabled: true,
            ..SimConfig::paper()
        }
    }

    /// Validate the configuration.
    ///
    /// # Panics
    ///
    /// Panics if any field is out of its domain.
    pub fn validate(&self) {
        assert!(self.dt_s > 0.0, "dt must be positive");
        assert!(self.max_horizon_s > self.dt_s, "horizon too short");
        assert!(
            (0.0..1.0).contains(&self.shortfall_tolerance),
            "shortfall tolerance must be in [0, 1)"
        );
        assert!(
            self.shortfall_window_s >= self.dt_s,
            "shortfall window shorter than a step"
        );
        assert!(
            self.throttle_factor > 0.0 && self.throttle_factor <= 1.0,
            "throttle factor must be in (0, 1]"
        );
        assert!(self.sample_every_s >= self.dt_s, "sampling too fast");
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid() {
        SimConfig::paper().validate();
        SimConfig::paper_with_tec().validate();
    }

    #[test]
    fn tec_variant_only_flips_tec() {
        let a = SimConfig::paper();
        let b = SimConfig::paper_with_tec();
        assert!(!a.tec_enabled);
        assert!(b.tec_enabled);
        assert_eq!(a.dt_s, b.dt_s);
        assert_eq!(a.max_horizon_s, b.max_horizon_s);
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn rejects_zero_dt() {
        let mut c = SimConfig::paper();
        c.dt_s = 0.0;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "throttle factor")]
    fn rejects_bad_throttle() {
        let mut c = SimConfig::paper();
        c.throttle_factor = 0.0;
        c.validate();
    }
}
