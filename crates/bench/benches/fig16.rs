//! Fig. 16 bench: runtime-calibration overhead vs the discount factor.
//!
//! This is the paper's overhead experiment measured with Criterion
//! rigour: one structural-similarity calibration on a profiled MDP, at
//! several discount factors.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use capman_core::capman::CapmanPolicy;
use capman_core::online::Calibrator;
use capman_core::policy::{Observation, Policy};
use capman_core::profiler::Profiler;
use capman_device::fsm::Action;
use capman_device::phone::PhoneProfile;
use capman_device::power::PowerModel;
use capman_device::states::DeviceState;
use capman_workload::{generate, WorkloadKind};

/// Replay a short PCMark cycle into a profiler (same seeding as
/// `experiments::fig16`).
fn seeded_profiler() -> Profiler {
    let mut policy = CapmanPolicy::new(1.0);
    let trace = generate(WorkloadKind::Pcmark, 900.0, 42);
    let model: PowerModel = PhoneProfile::nexus().power_model();
    let mut state = DeviceState::asleep();
    let mut t = 0.0;
    while t < 900.0 {
        let prev = state;
        let mut first = None;
        for seg in trace.segments_starting_in(t, t + 1.0) {
            for &a in &seg.actions {
                state = state.apply(a);
                first.get_or_insert(a);
            }
        }
        let demand = trace.at(t).demand;
        let power = model.device_power_mw(&state, &demand) / 1000.0;
        policy.observe(&Observation {
            time_s: t,
            prev_state: prev,
            action: first.unwrap_or(Action::TimerTick),
            new_state: state,
            reward: 0.9,
            power_w: power,
        });
        t += 1.0;
    }
    policy.profiler().clone()
}

fn bench_fig16(c: &mut Criterion) {
    let profiler = seeded_profiler();
    let mut group = c.benchmark_group("fig16");
    group.sample_size(20);
    for rho in [0.05, 0.5, 0.9, 0.99] {
        group.bench_with_input(
            BenchmarkId::new("calibration", format!("rho_{rho}")),
            &rho,
            |b, &rho| {
                b.iter(|| {
                    let mut cal = Calibrator::new(rho, 0.1, 1.0);
                    cal.recalibrate(0.0, &profiler, 1.0)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig16);
criterion_main!(benches);
