//! Experiment result export.
//!
//! The figures binary prints human-readable tables; this module exports
//! the same outcomes as CSV for plotting and regression tracking (no
//! extra dependencies — the data is flat).

use std::fmt::Write as _;

use crate::metrics::Outcome;

/// Escape a CSV field (quote when it contains separators or quotes).
fn field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// The CSV header for [`outcomes_csv`].
pub const OUTCOME_HEADER: &str = "policy,workload,phone,service_time_s,end_reason,\
energy_delivered_j,energy_heat_j,work_served,switches,big_active_s,little_active_s,\
tec_on_s,tec_energy_j,max_hotspot_c,mean_hotspot_c,scheduler_overhead_us,recalibrations";

/// Render outcomes as CSV (header plus one row each).
pub fn outcomes_csv(outcomes: &[Outcome]) -> String {
    let mut out = String::from(OUTCOME_HEADER);
    out.push('\n');
    for o in outcomes {
        let _ = writeln!(
            out,
            "{},{},{},{:.3},{:?},{:.3},{:.3},{:.3},{},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{}",
            field(&o.policy),
            field(&o.workload),
            field(&o.phone),
            o.service_time_s,
            o.end_reason,
            o.energy_delivered_j,
            o.energy_heat_j,
            o.work_served,
            o.switches,
            o.big_active_s,
            o.little_active_s,
            o.tec_on_s,
            o.tec_energy_j,
            o.max_hotspot_c,
            o.mean_hotspot_c,
            o.scheduler_overhead_us,
            o.recalibrations,
        );
    }
    out
}

/// Render an outcome's telemetry time series as CSV.
pub fn telemetry_csv(outcome: &Outcome) -> String {
    let mut out = String::from(
        "time_s,power_mw,hotspot_c,shell_c,battery_c,big_soc,little_soc,active,tec_on,voltage_v\n",
    );
    for s in outcome.telemetry.samples() {
        let _ = writeln!(
            out,
            "{:.1},{:.1},{:.2},{:.2},{:.2},{:.4},{:.4},{},{},{:.3}",
            s.time_s,
            s.power_mw,
            s.hotspot_c,
            s.shell_c,
            s.battery_c,
            s.big_soc,
            s.little_soc,
            s.active,
            u8::from(s.tec_on),
            s.voltage_v,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::EndReason;
    use crate::telemetry::{Sample, Telemetry};
    use capman_battery::chemistry::Class;

    fn outcome() -> Outcome {
        let mut telemetry = Telemetry::new();
        telemetry.push(Sample {
            time_s: 0.0,
            power_mw: 1500.0,
            hotspot_c: 40.0,
            shell_c: 30.0,
            battery_c: 28.0,
            big_soc: 0.9,
            little_soc: 0.8,
            active: Class::Little,
            tec_on: true,
            voltage_v: 3.7,
        });
        Outcome {
            policy: "CAPMAN".into(),
            workload: "eta-50%".into(),
            phone: "Nexus".into(),
            service_time_s: 1234.5,
            end_reason: EndReason::PackDepleted,
            energy_delivered_j: 1000.0,
            energy_heat_j: 50.0,
            work_served: 5000.0,
            switches: 42,
            big_active_s: 700.0,
            little_active_s: 534.5,
            big_delivered_j: 600.0,
            little_delivered_j: 400.0,
            tec_on_s: 120.0,
            tec_energy_j: 115.0,
            max_hotspot_c: 45.1,
            mean_hotspot_c: 43.0,
            scheduler_overhead_us: 321.0,
            recalibrations: 3,
            telemetry,
        }
    }

    #[test]
    fn outcome_csv_has_header_and_rows() {
        let csv = outcomes_csv(&[outcome(), outcome()]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("policy,workload"));
        assert_eq!(
            lines[0].split(',').count(),
            lines[1].split(',').count(),
            "row arity must match the header"
        );
        assert!(lines[1].contains("CAPMAN"));
        assert!(lines[1].contains("1234.5"));
    }

    #[test]
    fn csv_quotes_fields_with_separators() {
        let mut o = outcome();
        o.workload = "eta,50".into();
        let csv = outcomes_csv(&[o]);
        assert!(csv.contains("\"eta,50\""));
    }

    #[test]
    fn telemetry_csv_round_trips_values() {
        let csv = telemetry_csv(&outcome());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        let row: Vec<&str> = lines[1].split(',').collect();
        assert_eq!(row[0], "0.0");
        assert_eq!(row[7], "LITTLE");
        assert_eq!(row[8], "1");
    }

    #[test]
    fn empty_outcomes_produce_header_only() {
        let csv = outcomes_csv(&[]);
        assert_eq!(csv.lines().count(), 1);
    }
}
