//! Machine-readable perf tracking: `BENCH_mdp.json`.
//!
//! The `bench_mdp` binary measures the solver and similarity hot paths
//! and serialises the numbers here, so the perf trajectory is diffable
//! across PRs (the vendored serde stand-in has no format backend, so
//! the JSON is emitted by hand — the schema is flat enough for that).

use std::fmt::Write as _;

/// `num / den` with the zero/degenerate denominator guarded to 0.0 —
/// every ratio a report derives goes through here so an empty or
/// zero-wall measurement renders as 0, never NaN/Inf (which would also
/// corrupt the hand-written JSON).
pub fn guarded_ratio(num: f64, den: f64) -> f64 {
    if den > 0.0 {
        num / den
    } else {
        0.0
    }
}

/// One solver measurement row.
#[derive(Debug, Clone)]
pub struct SolverRow {
    /// State count of the fixture graph.
    pub states: usize,
    /// `(state, action)` pairs with outcomes.
    pub action_nodes: usize,
    /// Total transition edges.
    pub outcomes: usize,
    /// Bellman sweeps to convergence.
    pub iterations: usize,
    /// Pre-CSR baseline: nested-Vec Gauss–Seidel, milliseconds.
    pub nested_ms: f64,
    /// CSR solver, serial schedule, milliseconds.
    pub csr_serial_ms: f64,
    /// CSR solver, parallel schedule, milliseconds.
    pub csr_parallel_ms: f64,
    /// Every serial-CSR rep, milliseconds — the per-rep distribution
    /// the statistical perf gate runs Welch's t-test over (empty in
    /// reports predating the samples schema).
    pub csr_serial_ms_samples: Vec<f64>,
}

impl SolverRow {
    /// Speedup of the serial CSR solver over the nested baseline
    /// (0.0 when the CSR measurement is degenerate).
    pub fn speedup_serial(&self) -> f64 {
        guarded_ratio(self.nested_ms, self.csr_serial_ms)
    }

    /// Speedup of the parallel CSR solver over the nested baseline
    /// (0.0 when the CSR measurement is degenerate).
    pub fn speedup_parallel(&self) -> f64 {
        guarded_ratio(self.nested_ms, self.csr_parallel_ms)
    }
}

/// One similarity-engine measurement row.
#[derive(Debug, Clone)]
pub struct SimilarityRow {
    /// State count of the fixture graph.
    pub states: usize,
    /// Reference recursion wall time, milliseconds.
    pub reference_ms: f64,
    /// Parallel memoized engine wall time, milliseconds.
    pub engine_ms: f64,
    /// Every engine rep, milliseconds (Welch's t-test input).
    pub engine_ms_samples: Vec<f64>,
}

impl SimilarityRow {
    /// Speedup of the engine over the reference recursion (0.0 when the
    /// engine measurement is degenerate).
    pub fn speedup(&self) -> f64 {
        guarded_ratio(self.reference_ms, self.engine_ms)
    }
}

/// The full report the binary writes.
#[derive(Debug, Clone, Default)]
pub struct PerfReport {
    /// Worker threads available to the parallel paths.
    pub threads: usize,
    /// Solver rows, one per fixture size.
    pub solver: Vec<SolverRow>,
    /// Similarity rows, one per fixture size.
    pub similarity: Vec<SimilarityRow>,
}

fn push_f64(out: &mut String, key: &str, value: f64, trailing: bool) {
    let _ = write!(out, "      \"{key}\": {value:.4}");
    out.push_str(if trailing { ",\n" } else { "\n" });
}

/// Emit a per-rep sample array. Omitted entirely when empty so reports
/// from `--reps 1`-era tooling keep their exact legacy shape; the flat
/// `parse_rows` extractor skips nested arrays either way, so only the
/// statistical gate sees these.
fn push_samples(out: &mut String, key: &str, samples: &[f64], trailing: bool) {
    if samples.is_empty() {
        return;
    }
    let _ = write!(out, "      \"{key}\": [");
    for (i, s) in samples.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{s:.4}");
    }
    out.push(']');
    out.push_str(if trailing { ",\n" } else { "\n" });
}

impl PerfReport {
    /// Render the report as JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(
            out,
            "  \"generated_by\": \"cargo run --release -p capman-bench --bin bench_mdp\","
        );
        let _ = writeln!(out, "  \"threads\": {},", self.threads);
        out.push_str("  \"solver\": [\n");
        for (i, row) in self.solver.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"states\": {},", row.states);
            let _ = writeln!(out, "      \"action_nodes\": {},", row.action_nodes);
            let _ = writeln!(out, "      \"outcomes\": {},", row.outcomes);
            let _ = writeln!(out, "      \"iterations\": {},", row.iterations);
            push_f64(&mut out, "nested_gauss_seidel_ms", row.nested_ms, true);
            push_f64(&mut out, "csr_serial_ms", row.csr_serial_ms, true);
            push_f64(&mut out, "csr_parallel_ms", row.csr_parallel_ms, true);
            push_samples(
                &mut out,
                "csr_serial_ms_samples",
                &row.csr_serial_ms_samples,
                true,
            );
            push_f64(&mut out, "speedup_serial", row.speedup_serial(), true);
            push_f64(&mut out, "speedup_parallel", row.speedup_parallel(), false);
            out.push_str(if i + 1 < self.solver.len() {
                "    },\n"
            } else {
                "    }\n"
            });
        }
        out.push_str("  ],\n");
        out.push_str("  \"similarity\": [\n");
        for (i, row) in self.similarity.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"states\": {},", row.states);
            push_f64(&mut out, "reference_ms", row.reference_ms, true);
            push_f64(&mut out, "engine_ms", row.engine_ms, true);
            push_samples(&mut out, "engine_ms_samples", &row.engine_ms_samples, true);
            push_f64(&mut out, "speedup", row.speedup(), false);
            out.push_str(if i + 1 < self.similarity.len() {
                "    },\n"
            } else {
                "    }\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// One quotient level of a recalibration measurement, warm vs cold.
#[derive(Debug, Clone)]
pub struct RecalLevelRow {
    /// Similarity threshold that induced the level.
    pub theta: f64,
    /// Quotient states at this level.
    pub n_clusters: usize,
    /// Jacobi sweeps with the coarse-to-fine warm start.
    pub warm_sweeps: usize,
    /// Jacobi sweeps solving the same level from zeros.
    pub cold_sweeps: usize,
}

/// One recalibration measurement row (one fixture size).
#[derive(Debug, Clone)]
pub struct RecalRow {
    /// State count of the fixture.
    pub states: usize,
    /// `(state, action)` pairs with outcomes.
    pub action_nodes: usize,
    /// Total transition edges.
    pub outcomes: usize,
    /// Per-level sweep ledger, coarse → fine.
    pub levels: Vec<RecalLevelRow>,
    /// Full-space sweeps after the warm-started ladder.
    pub warm_final_sweeps: usize,
    /// Full-space sweeps from a cold start.
    pub cold_final_sweeps: usize,
    /// Total sweeps, warm pipeline (levels + final).
    pub warm_total_sweeps: usize,
    /// Total sweeps, cold baseline (levels + final).
    pub cold_total_sweeps: usize,
    /// Warm pipeline wall time, milliseconds (min over reps).
    pub warm_ms: f64,
    /// Every warm-pipeline rep, milliseconds (Welch's t-test input).
    pub warm_ms_samples: Vec<f64>,
    /// Cold baseline wall time, milliseconds (min over reps).
    pub cold_ms: f64,
    /// Warm pipeline with the f32 kernel, milliseconds.
    pub f32_ms: f64,
    /// Max abs deviation of the f32 values from the f64 oracle.
    pub f32_max_abs_err: f64,
}

impl RecalRow {
    /// Wall-time speedup of the warm pipeline over the cold baseline
    /// (0.0 when the warm measurement is degenerate).
    pub fn speedup(&self) -> f64 {
        guarded_ratio(self.cold_ms, self.warm_ms)
    }

    /// Sweep reduction: cold total over warm total.
    pub fn sweep_ratio(&self) -> f64 {
        self.cold_total_sweeps as f64 / self.warm_total_sweeps.max(1) as f64
    }
}

/// One drift-ladder measurement: incremental recalibration (in-place
/// row patch + closure-restricted Bellman sweeps) against the
/// full-rebuild warm baseline, at a given dirty fraction.
#[derive(Debug, Clone)]
pub struct IncrementalRow {
    /// Fraction of populated rows that drifted (the gate's row key).
    pub dirty_frac: f64,
    /// State count of the fixture.
    pub states: usize,
    /// Dirty `(state, action)` rows patched.
    pub dirty_rows: usize,
    /// Distinct owners of the dirty rows.
    pub dirty_states: usize,
    /// Backward closure the restricted sweeps covered (the whole space
    /// on fallback).
    pub affected_states: usize,
    /// Whether the pipeline took its full-solve fallback.
    pub full_fallback: bool,
    /// Incremental path (patch + restricted solve), milliseconds (min
    /// over reps).
    pub wall_ms: f64,
    /// Every incremental rep, milliseconds (Welch's t-test input).
    pub wall_ms_samples: Vec<f64>,
    /// Full rebuild + warm solve, milliseconds (min over reps).
    pub full_ms: f64,
    /// Every full-rebuild rep, milliseconds.
    pub full_ms_samples: Vec<f64>,
}

impl IncrementalRow {
    /// Wall-time win of the incremental path over the full rebuild.
    pub fn speedup(&self) -> f64 {
        guarded_ratio(self.full_ms, self.wall_ms)
    }
}

/// The report `bench_recalibrate` writes to `BENCH_recalibrate.json`.
#[derive(Debug, Clone, Default)]
pub struct RecalReport {
    /// Worker threads available to the parallel paths.
    pub threads: usize,
    /// Discount factor of every solve.
    pub rho: f64,
    /// Precision target of every solve.
    pub eps: f64,
    /// Measurement rows, one per fixture size.
    pub rows: Vec<RecalRow>,
    /// Drift-ladder rows, one per dirty fraction.
    pub incremental: Vec<IncrementalRow>,
}

impl RecalReport {
    /// Render the report as JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(
            out,
            "  \"generated_by\": \"cargo run --release -p capman-bench --bin bench_recalibrate\","
        );
        let _ = writeln!(out, "  \"threads\": {},", self.threads);
        let _ = writeln!(out, "  \"rho\": {},", self.rho);
        let _ = writeln!(out, "  \"eps\": {:e},", self.eps);
        out.push_str("  \"recalibration\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"states\": {},", row.states);
            let _ = writeln!(out, "      \"action_nodes\": {},", row.action_nodes);
            let _ = writeln!(out, "      \"outcomes\": {},", row.outcomes);
            out.push_str("      \"levels\": [\n");
            for (j, lvl) in row.levels.iter().enumerate() {
                let _ = write!(
                    out,
                    "        {{\"theta\": {}, \"n_clusters\": {}, \"warm_sweeps\": {}, \"cold_sweeps\": {}}}",
                    lvl.theta, lvl.n_clusters, lvl.warm_sweeps, lvl.cold_sweeps
                );
                out.push_str(if j + 1 < row.levels.len() {
                    ",\n"
                } else {
                    "\n"
                });
            }
            out.push_str("      ],\n");
            let _ = writeln!(
                out,
                "      \"warm_final_sweeps\": {},",
                row.warm_final_sweeps
            );
            let _ = writeln!(
                out,
                "      \"cold_final_sweeps\": {},",
                row.cold_final_sweeps
            );
            let _ = writeln!(
                out,
                "      \"warm_total_sweeps\": {},",
                row.warm_total_sweeps
            );
            let _ = writeln!(
                out,
                "      \"cold_total_sweeps\": {},",
                row.cold_total_sweeps
            );
            push_f64(&mut out, "warm_ms", row.warm_ms, true);
            push_samples(&mut out, "warm_ms_samples", &row.warm_ms_samples, true);
            push_f64(&mut out, "cold_ms", row.cold_ms, true);
            push_f64(&mut out, "f32_ms", row.f32_ms, true);
            let _ = writeln!(out, "      \"f32_max_abs_err\": {:e},", row.f32_max_abs_err);
            push_f64(&mut out, "sweep_ratio", row.sweep_ratio(), true);
            push_f64(&mut out, "speedup", row.speedup(), false);
            out.push_str(if i + 1 < self.rows.len() {
                "    },\n"
            } else {
                "    }\n"
            });
        }
        out.push_str("  ],\n");
        out.push_str("  \"incremental\": [\n");
        for (i, row) in self.incremental.iter().enumerate() {
            out.push_str("    {\n");
            push_f64(&mut out, "dirty_frac", row.dirty_frac, true);
            let _ = writeln!(out, "      \"states\": {},", row.states);
            let _ = writeln!(out, "      \"dirty_rows\": {},", row.dirty_rows);
            let _ = writeln!(out, "      \"dirty_states\": {},", row.dirty_states);
            let _ = writeln!(out, "      \"affected_states\": {},", row.affected_states);
            let _ = writeln!(out, "      \"full_fallback\": {},", row.full_fallback as u8);
            push_f64(&mut out, "wall_ms", row.wall_ms, true);
            push_samples(&mut out, "wall_ms_samples", &row.wall_ms_samples, true);
            push_f64(&mut out, "full_ms", row.full_ms, true);
            push_samples(&mut out, "full_ms_samples", &row.full_ms_samples, true);
            push_f64(&mut out, "speedup", row.speedup(), false);
            out.push_str(if i + 1 < self.incremental.len() {
                "    },\n"
            } else {
                "    }\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// One fleet measurement row: the same fleet carried through a full
/// discharge cycle twice, with inline (blocking per-device) and pooled
/// (async, coalesced) calibration.
#[derive(Debug, Clone)]
pub struct FleetRow {
    /// Devices in the fleet.
    pub devices: usize,
    /// Cohort profiles the devices were instantiated from.
    pub cohorts: usize,
    /// Scheduling ticks per mode (must match between modes — the
    /// calibration path must not change how long devices tick).
    pub ticks: u64,
    /// Wall time with inline calibration, milliseconds.
    pub inline_wall_ms: f64,
    /// Wall time with the async calibration pool, milliseconds.
    pub pool_wall_ms: f64,
    /// Every pooled-mode rep, milliseconds (Welch's t-test input;
    /// one-element when the ladder runs with `--reps 1`).
    pub pool_wall_ms_samples: Vec<f64>,
    /// Calibrations run inline (one per device per due interval).
    pub inline_recalibrations: u64,
    /// Pool solves actually executed (after cohort coalescing).
    pub pool_completed: u64,
    /// Pool requests submitted by devices.
    pub pool_submitted: u64,
    /// Requests absorbed by an in-flight cohort calibration.
    pub pool_coalesced: u64,
    /// Requests dropped on queue overflow (gated to zero in CI).
    pub pool_dropped: u64,
    /// Median per-device max calibration staleness, simulated seconds.
    pub staleness_p50_s: f64,
    /// 95th-percentile staleness, simulated seconds.
    pub staleness_p95_s: f64,
    /// 99th-percentile staleness, simulated seconds.
    pub staleness_p99_s: f64,
    /// Per-rep p99 staleness, simulated seconds (Welch's t-test input).
    pub staleness_p99_s_samples: Vec<f64>,
    /// Largest staleness observed, simulated seconds.
    pub staleness_max_s: f64,
    /// Median battery lifetime across the fleet, seconds (pool mode).
    pub lifetime_p50_s: f64,
    /// 95th-percentile peak hot-spot temperature, degC (pool mode).
    pub hotspot_p95_c: f64,
}

impl FleetRow {
    /// Devices per wall-clock second, inline calibration (0.0 when the
    /// measurement is degenerate).
    pub fn inline_devices_per_s(&self) -> f64 {
        guarded_ratio(self.devices as f64, self.inline_wall_ms / 1e3)
    }

    /// Devices per wall-clock second, pooled calibration (0.0 when the
    /// measurement is degenerate).
    pub fn pool_devices_per_s(&self) -> f64 {
        guarded_ratio(self.devices as f64, self.pool_wall_ms / 1e3)
    }

    /// Throughput gain of the pool over inline calibration (0.0 when
    /// the pool measurement is degenerate).
    pub fn speedup(&self) -> f64 {
        guarded_ratio(self.inline_wall_ms, self.pool_wall_ms)
    }
}

/// One arena-path measurement row: the same two-cohort fleet driven
/// through the structure-of-arrays [`ArenaRunner`] with streaming
/// (memory-bounded) aggregation and pooled calibration. Where
/// [`FleetRow`] measures the calibration pool against inline solves,
/// an arena row measures the data-oriented fleet path itself —
/// throughput *and* peak memory, because the arena's contract is that
/// RSS stays flat while the device count grows.
///
/// [`ArenaRunner`]: capman_fleet::ArenaRunner
#[derive(Debug, Clone)]
pub struct ArenaRow {
    /// Devices in the fleet.
    pub devices: usize,
    /// Devices resident per shard arena (the memory knob).
    pub shard_devices: usize,
    /// Cohort profiles the devices were instantiated from.
    pub cohorts: usize,
    /// Scheduling ticks executed across the fleet.
    pub ticks: u64,
    /// Wall time of the arena run, milliseconds (min over reps).
    pub wall_ms: f64,
    /// Every rep, milliseconds (Welch's t-test input; one-element when
    /// the ladder runs with a single rep).
    pub wall_ms_samples: Vec<f64>,
    /// Process peak RSS (`VmHWM`) after the row, kibibytes. 0 means
    /// "unavailable on this platform", not "tiny".
    pub peak_rss_kb: u64,
    /// Calibrations adopted by devices.
    pub recalibrations: u64,
    /// Pool solves actually executed (after cohort coalescing).
    pub pool_completed: u64,
    /// Requests dropped on queue overflow (asserted zero in the bench).
    pub pool_dropped: u64,
    /// 99th-percentile per-device max calibration staleness, seconds.
    pub staleness_p99_s: f64,
    /// Median battery lifetime across the fleet, seconds.
    pub lifetime_p50_s: f64,
    /// 95th-percentile peak hot-spot temperature, degC.
    pub hotspot_p95_c: f64,
}

impl ArenaRow {
    /// Devices per wall-clock second (0.0 when the measurement is
    /// degenerate).
    pub fn devices_per_s(&self) -> f64 {
        guarded_ratio(self.devices as f64, self.wall_ms / 1e3)
    }
}

/// The report `bench_fleet` writes to `BENCH_fleet.json`.
#[derive(Debug, Clone, Default)]
pub struct FleetReport {
    /// Worker threads available to the sharded runner.
    pub threads: usize,
    /// Devices per shard.
    pub batch: usize,
    /// Simulated horizon of every device, seconds.
    pub horizon_s: f64,
    /// Calibration cadence of every cohort, seconds.
    pub every_s: f64,
    /// Measurement rows, one per fleet size.
    pub rows: Vec<FleetRow>,
    /// Arena-path rows, one per arena ladder size (empty when the run
    /// skipped the arena ladder).
    pub arena: Vec<ArenaRow>,
}

impl FleetReport {
    /// Render the report as JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(
            out,
            "  \"generated_by\": \"cargo run --release -p capman-bench --bin bench_fleet\","
        );
        let _ = writeln!(out, "  \"threads\": {},", self.threads);
        let _ = writeln!(out, "  \"batch\": {},", self.batch);
        let _ = writeln!(out, "  \"horizon_s\": {},", self.horizon_s);
        let _ = writeln!(out, "  \"every_s\": {},", self.every_s);
        out.push_str("  \"fleet\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"devices\": {},", row.devices);
            let _ = writeln!(out, "      \"cohorts\": {},", row.cohorts);
            let _ = writeln!(out, "      \"ticks\": {},", row.ticks);
            push_f64(&mut out, "inline_wall_ms", row.inline_wall_ms, true);
            push_f64(&mut out, "pool_wall_ms", row.pool_wall_ms, true);
            push_samples(
                &mut out,
                "pool_wall_ms_samples",
                &row.pool_wall_ms_samples,
                true,
            );
            push_f64(
                &mut out,
                "inline_devices_per_s",
                row.inline_devices_per_s(),
                true,
            );
            push_f64(
                &mut out,
                "pool_devices_per_s",
                row.pool_devices_per_s(),
                true,
            );
            push_f64(&mut out, "speedup", row.speedup(), true);
            let _ = writeln!(
                out,
                "      \"inline_recalibrations\": {},",
                row.inline_recalibrations
            );
            let _ = writeln!(out, "      \"pool_completed\": {},", row.pool_completed);
            let _ = writeln!(out, "      \"pool_submitted\": {},", row.pool_submitted);
            let _ = writeln!(out, "      \"pool_coalesced\": {},", row.pool_coalesced);
            let _ = writeln!(out, "      \"pool_dropped\": {},", row.pool_dropped);
            push_f64(&mut out, "staleness_p50_s", row.staleness_p50_s, true);
            push_f64(&mut out, "staleness_p95_s", row.staleness_p95_s, true);
            push_f64(&mut out, "staleness_p99_s", row.staleness_p99_s, true);
            push_samples(
                &mut out,
                "staleness_p99_s_samples",
                &row.staleness_p99_s_samples,
                true,
            );
            push_f64(&mut out, "staleness_max_s", row.staleness_max_s, true);
            push_f64(&mut out, "lifetime_p50_s", row.lifetime_p50_s, true);
            push_f64(&mut out, "hotspot_p95_c", row.hotspot_p95_c, false);
            out.push_str(if i + 1 < self.rows.len() {
                "    },\n"
            } else {
                "    }\n"
            });
        }
        out.push_str("  ],\n");
        if self.arena.is_empty() {
            out.push_str("  \"arena\": []\n}\n");
            return out;
        }
        out.push_str("  \"arena\": [\n");
        for (i, row) in self.arena.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"devices\": {},", row.devices);
            let _ = writeln!(out, "      \"shard_devices\": {},", row.shard_devices);
            let _ = writeln!(out, "      \"cohorts\": {},", row.cohorts);
            let _ = writeln!(out, "      \"ticks\": {},", row.ticks);
            push_f64(&mut out, "wall_ms", row.wall_ms, true);
            push_samples(&mut out, "wall_ms_samples", &row.wall_ms_samples, true);
            push_f64(&mut out, "devices_per_s", row.devices_per_s(), true);
            let _ = writeln!(out, "      \"peak_rss_kb\": {},", row.peak_rss_kb);
            let _ = writeln!(out, "      \"recalibrations\": {},", row.recalibrations);
            let _ = writeln!(out, "      \"pool_completed\": {},", row.pool_completed);
            let _ = writeln!(out, "      \"pool_dropped\": {},", row.pool_dropped);
            push_f64(&mut out, "staleness_p99_s", row.staleness_p99_s, true);
            push_f64(&mut out, "lifetime_p50_s", row.lifetime_p50_s, true);
            push_f64(&mut out, "hotspot_p95_c", row.hotspot_p95_c, false);
            out.push_str(if i + 1 < self.arena.len() {
                "    },\n"
            } else {
                "    }\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// One serve-soak measurement row: the arena fleet driving the
/// resident calibration service at a fixed overload factor
/// (`devices_per_cohort` against a per-cohort quota of one admission
/// per cadence window). Where [`ArenaRow`] measures the fleet path,
/// a serve row measures the service's overload envelope: how much it
/// shed, whether every tenant kept its once-per-window adoption, and
/// what the served requests waited.
#[derive(Debug, Clone)]
pub struct ServeRow {
    /// Devices per cohort — the overload factor (the gate's row key).
    pub overload_x: usize,
    /// Tenant cohorts sharing the service.
    pub cohorts: usize,
    /// Total devices generating traffic.
    pub devices: usize,
    /// Cadence windows the soak ran.
    pub windows: u32,
    /// Host wall time of the soak, milliseconds (min over reps).
    pub wall_ms: f64,
    /// Every rep, milliseconds (Welch's t-test input; one-element when
    /// the ladder runs with a single rep).
    pub wall_ms_samples: Vec<f64>,
    /// p99 first-submission-to-solve wait of served requests, simulated
    /// seconds.
    pub staleness_p99_s: f64,
    /// Per-rep p99 wait, simulated seconds (Welch's t-test input).
    pub staleness_p99_s_samples: Vec<f64>,
    /// p99 wait of picks served on the hot lane, simulated seconds.
    pub staleness_hot_p99_s: f64,
    /// p99 wait of picks served on the normal lane, simulated seconds.
    pub staleness_normal_p99_s: f64,
    /// p99 wait of picks served on the cold lane, simulated seconds.
    pub staleness_cold_p99_s: f64,
    /// Fraction of submissions whose payload never reached a solve.
    pub shed_fraction: f64,
    /// Calibration requests submitted by devices.
    pub submitted: u64,
    /// Requests admitted into the queue.
    pub admitted: u64,
    /// Requests absorbed by an in-flight cohort solve.
    pub coalesced: u64,
    /// Requests that replaced a queued sibling (drop-oldest).
    pub replaced: u64,
    /// Requests refused by the per-cohort quota.
    pub shed: u64,
    /// Requests refused by the queue bound or drain.
    pub backpressure: u64,
    /// Solves executed and published.
    pub completed: u64,
    /// Admitted requests abandoned at shutdown.
    pub abandoned: u64,
    /// Worst gap, in windows, between consecutive publications of any
    /// cohort.
    pub max_gap_windows: u32,
    /// Did every cohort publish at least once per window?
    pub starvation_free: bool,
    /// p99 of the queue phase of served staleness, simulated seconds.
    pub phase_queue_p99_s: f64,
    /// p99 of the lane (passed-over) phase, simulated seconds.
    pub phase_lane_p99_s: f64,
    /// p99 of the solve phase, simulated seconds.
    pub phase_solve_p99_s: f64,
    /// p99 of the publish→adopt phase, simulated seconds.
    pub phase_publish_adopt_p99_s: f64,
}

impl ServeRow {
    /// Submissions per wall-clock second (0.0 when the measurement is
    /// degenerate).
    pub fn submissions_per_s(&self) -> f64 {
        guarded_ratio(self.submitted as f64, self.wall_ms / 1e3)
    }
}

/// The report `bench_serve` writes to `BENCH_serve.json`.
#[derive(Debug, Clone, Default)]
pub struct ServeReport {
    /// Worker threads available to the host (the soak itself is
    /// single-threaded by construction — recorded for context).
    pub threads: usize,
    /// Interleaved repetitions per overload level.
    pub reps: usize,
    /// Cadence window length, simulated seconds.
    pub window_s: f64,
    /// Cadence windows per soak.
    pub windows: u32,
    /// Measurement rows, one per overload factor.
    pub rows: Vec<ServeRow>,
}

impl ServeReport {
    /// Render the report as JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(
            out,
            "  \"generated_by\": \"cargo run --release -p capman-bench --bin bench_serve\","
        );
        let _ = writeln!(out, "  \"threads\": {},", self.threads);
        let _ = writeln!(out, "  \"reps\": {},", self.reps);
        let _ = writeln!(out, "  \"window_s\": {},", self.window_s);
        let _ = writeln!(out, "  \"windows\": {},", self.windows);
        if self.rows.is_empty() {
            out.push_str("  \"serve\": []\n}\n");
            return out;
        }
        out.push_str("  \"serve\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"overload_x\": {},", row.overload_x);
            let _ = writeln!(out, "      \"cohorts\": {},", row.cohorts);
            let _ = writeln!(out, "      \"devices\": {},", row.devices);
            let _ = writeln!(out, "      \"windows\": {},", row.windows);
            push_f64(&mut out, "wall_ms", row.wall_ms, true);
            push_samples(&mut out, "wall_ms_samples", &row.wall_ms_samples, true);
            push_f64(&mut out, "submissions_per_s", row.submissions_per_s(), true);
            push_f64(&mut out, "staleness_p99_s", row.staleness_p99_s, true);
            push_samples(
                &mut out,
                "staleness_p99_s_samples",
                &row.staleness_p99_s_samples,
                true,
            );
            push_f64(
                &mut out,
                "staleness_hot_p99_s",
                row.staleness_hot_p99_s,
                true,
            );
            push_f64(
                &mut out,
                "staleness_normal_p99_s",
                row.staleness_normal_p99_s,
                true,
            );
            push_f64(
                &mut out,
                "staleness_cold_p99_s",
                row.staleness_cold_p99_s,
                true,
            );
            push_f64(&mut out, "shed_fraction", row.shed_fraction, true);
            let _ = writeln!(out, "      \"submitted\": {},", row.submitted);
            let _ = writeln!(out, "      \"admitted\": {},", row.admitted);
            let _ = writeln!(out, "      \"coalesced\": {},", row.coalesced);
            let _ = writeln!(out, "      \"replaced\": {},", row.replaced);
            let _ = writeln!(out, "      \"shed\": {},", row.shed);
            let _ = writeln!(out, "      \"backpressure\": {},", row.backpressure);
            let _ = writeln!(out, "      \"completed\": {},", row.completed);
            let _ = writeln!(out, "      \"abandoned\": {},", row.abandoned);
            let _ = writeln!(out, "      \"max_gap_windows\": {},", row.max_gap_windows);
            push_f64(&mut out, "phase_queue_p99_s", row.phase_queue_p99_s, true);
            push_f64(&mut out, "phase_lane_p99_s", row.phase_lane_p99_s, true);
            push_f64(&mut out, "phase_solve_p99_s", row.phase_solve_p99_s, true);
            push_f64(
                &mut out,
                "phase_publish_adopt_p99_s",
                row.phase_publish_adopt_p99_s,
                true,
            );
            let _ = writeln!(
                out,
                "      \"starvation_free\": {}",
                row.starvation_free as u8
            );
            out.push_str(if i + 1 < self.rows.len() {
                "    },\n"
            } else {
                "    }\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// The `bench_fleet --obs-overhead` measurement: the same pooled fleet
/// run with the observability runtime switch off vs on, interleaved, so
/// both arms share thermal/cache conditions. With the `obs` feature
/// compiled out the two arms run identical code and the delta bounds
/// harness noise; with it compiled in, the off-arm measures the
/// one-branch disabled path and the on-arm the full recording cost.
#[derive(Debug, Clone)]
pub struct ObsOverheadReport {
    /// Whether the binary was built with `--features obs`.
    pub obs_compiled: bool,
    /// Devices in the measured fleet.
    pub devices: usize,
    /// Interleaved repetitions per arm (min wall is reported).
    pub reps: usize,
    /// Min wall time with the runtime switch off, milliseconds.
    pub wall_off_ms: f64,
    /// Min wall time with the runtime switch on, milliseconds.
    pub wall_on_ms: f64,
}

impl ObsOverheadReport {
    /// Devices per second with observability off (0.0 if degenerate).
    pub fn devices_per_s_off(&self) -> f64 {
        guarded_ratio(self.devices as f64, self.wall_off_ms / 1e3)
    }

    /// Devices per second with observability on (0.0 if degenerate).
    pub fn devices_per_s_on(&self) -> f64 {
        guarded_ratio(self.devices as f64, self.wall_on_ms / 1e3)
    }

    /// Throughput cost of the on-arm relative to the off-arm, percent
    /// (negative values mean the on-arm happened to be faster — noise).
    pub fn overhead_pct(&self) -> f64 {
        if self.wall_off_ms > 0.0 {
            (self.wall_on_ms / self.wall_off_ms - 1.0) * 100.0
        } else {
            0.0
        }
    }

    /// Render the report as JSON (section `obs_overhead`, one row,
    /// parseable by [`parse_rows`]).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(
            out,
            "  \"generated_by\": \"cargo run --release -p capman-bench --bin bench_fleet -- --obs-overhead\","
        );
        let _ = writeln!(out, "  \"obs_compiled\": {},", self.obs_compiled);
        out.push_str("  \"obs_overhead\": [\n    {\n");
        let _ = writeln!(out, "      \"devices\": {},", self.devices);
        let _ = writeln!(out, "      \"reps\": {},", self.reps);
        push_f64(&mut out, "wall_off_ms", self.wall_off_ms, true);
        push_f64(&mut out, "wall_on_ms", self.wall_on_ms, true);
        push_f64(
            &mut out,
            "devices_per_s_off",
            self.devices_per_s_off(),
            true,
        );
        push_f64(&mut out, "devices_per_s_on", self.devices_per_s_on(), true);
        push_f64(&mut out, "overhead_pct", self.overhead_pct(), false);
        out.push_str("    }\n  ]\n}\n");
        out
    }
}

/// Extract every `"key": number` pair from one JSON object body — the
/// minimal parsing the cross-PR perf gate needs (the vendored serde has
/// no format backend). Nested arrays/objects inside the body are not
/// descended into for keys, but their contents are skipped correctly
/// for the flat keys that follow them.
fn object_numbers(body: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let bytes = body.as_bytes();
    let mut i = 0;
    let mut depth = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'[' | b'{' => depth += 1,
            b']' | b'}' => depth = depth.saturating_sub(1),
            b'"' if depth == 0 => {
                let start = i + 1;
                let end = body[start..].find('"').map(|e| start + e);
                let Some(end) = end else { break };
                let key = &body[start..end];
                i = end + 1;
                // Expect a colon, then capture a bare number if present.
                let rest = body[i..].trim_start();
                if let Some(after) = rest.strip_prefix(':') {
                    let after = after.trim_start();
                    let num: String = after
                        .chars()
                        .take_while(|c| c.is_ascii_digit() || "+-.eE".contains(*c))
                        .collect();
                    if let Ok(v) = num.parse::<f64>() {
                        out.push((key.to_string(), v));
                    }
                }
                continue;
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// Parse the rows of one named array (`"solver"`, `"similarity"`,
/// `"recalibration"`) out of a report previously written by
/// [`PerfReport::to_json`] / [`RecalReport::to_json`]: each row becomes
/// the list of its numeric `"key": value` pairs. Returns an empty list
/// if the section is missing.
pub fn parse_rows(json: &str, section: &str) -> Vec<Vec<(String, f64)>> {
    let needle = format!("\"{section}\": [");
    let Some(start) = json.find(&needle) else {
        return Vec::new();
    };
    let body = &json[start + needle.len()..];
    // Find the matching closing bracket of the section array.
    let mut depth = 1usize;
    let mut end = body.len();
    for (i, c) in body.char_indices() {
        match c {
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    end = i;
                    break;
                }
            }
            _ => {}
        }
    }
    let body = &body[..end];
    // Split into top-level objects.
    let mut rows = Vec::new();
    let mut obj_depth = 0usize;
    let mut obj_start = None;
    for (i, c) in body.char_indices() {
        match c {
            '{' => {
                if obj_depth == 0 {
                    obj_start = Some(i + 1);
                }
                obj_depth += 1;
            }
            '}' => {
                obj_depth -= 1;
                if obj_depth == 0 {
                    if let Some(s) = obj_start.take() {
                        rows.push(object_numbers(&body[s..i]));
                    }
                }
            }
            _ => {}
        }
    }
    rows
}

/// Look up a key in one parsed row.
pub fn row_value(row: &[(String, f64)], key: &str) -> Option<f64> {
    row.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_has_the_expected_shape() {
        let report = PerfReport {
            threads: 1,
            solver: vec![SolverRow {
                states: 512,
                action_nodes: 1700,
                outcomes: 5100,
                iterations: 40,
                nested_ms: 9.0,
                csr_serial_ms: 3.0,
                csr_parallel_ms: 3.0,
                csr_serial_ms_samples: vec![3.1, 2.9, 3.0],
            }],
            similarity: vec![SimilarityRow {
                states: 256,
                reference_ms: 100.0,
                engine_ms: 10.0,
                engine_ms_samples: Vec::new(),
            }],
        };
        let json = report.to_json();
        assert!(json.contains("\"states\": 512"));
        assert!(json.contains("\"speedup_serial\": 3.0000"));
        assert!(json.contains("\"speedup\": 10.0000"));
        assert!(json.contains("\"csr_serial_ms_samples\": [3.1000, 2.9000, 3.0000]"));
        assert!(
            !json.contains("engine_ms_samples"),
            "empty sample sets are omitted for legacy-report parity"
        );
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    fn recal_report() -> RecalReport {
        RecalReport {
            threads: 1,
            rho: 0.95,
            eps: 1e-9,
            rows: vec![RecalRow {
                states: 256,
                action_nodes: 700,
                outcomes: 2500,
                levels: vec![
                    RecalLevelRow {
                        theta: 0.3,
                        n_clusters: 8,
                        warm_sweeps: 380,
                        cold_sweeps: 380,
                    },
                    RecalLevelRow {
                        theta: 0.05,
                        n_clusters: 32,
                        warm_sweeps: 40,
                        cold_sweeps: 380,
                    },
                ],
                warm_final_sweeps: 45,
                cold_final_sweeps: 400,
                warm_total_sweeps: 465,
                cold_total_sweeps: 1160,
                warm_ms: 1.0,
                warm_ms_samples: vec![1.0, 1.2],
                cold_ms: 2.5,
                f32_ms: 0.8,
                f32_max_abs_err: 3.0e-4,
            }],
            incremental: vec![IncrementalRow {
                dirty_frac: 0.05,
                states: 256,
                dirty_rows: 13,
                dirty_states: 12,
                affected_states: 20,
                full_fallback: false,
                wall_ms: 0.2,
                wall_ms_samples: vec![0.2, 0.25],
                full_ms: 1.0,
                full_ms_samples: vec![1.0, 1.1],
            }],
        }
    }

    #[test]
    fn recal_json_has_the_expected_shape() {
        let json = recal_report().to_json();
        assert!(json.contains("\"recalibration\": ["));
        assert!(json.contains("\"warm_total_sweeps\": 465"));
        assert!(json.contains("\"cold_sweeps\": 380"));
        assert!(json.contains("\"speedup\": 2.5000"));
        assert!(json.contains("\"incremental\": ["));
        assert!(json.contains("\"dirty_frac\": 0.0500"));
        assert!(json.contains("\"full_fallback\": 0"));
        assert!(json.contains("\"wall_ms_samples\": [0.2000, 0.2500]"));
        assert!(json.contains("\"speedup\": 5.0000"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn parse_rows_round_trips_the_solver_section() {
        let report = PerfReport {
            threads: 2,
            solver: vec![
                SolverRow {
                    states: 128,
                    action_nodes: 400,
                    outcomes: 1200,
                    iterations: 30,
                    nested_ms: 4.0,
                    csr_serial_ms: 1.5,
                    csr_parallel_ms: 1.0,
                    csr_serial_ms_samples: Vec::new(),
                },
                SolverRow {
                    states: 512,
                    action_nodes: 1700,
                    outcomes: 5100,
                    iterations: 40,
                    nested_ms: 9.0,
                    csr_serial_ms: 3.0,
                    csr_parallel_ms: 2.0,
                    csr_serial_ms_samples: vec![3.2, 3.0, 3.1],
                },
            ],
            similarity: vec![SimilarityRow {
                states: 256,
                reference_ms: 100.0,
                engine_ms: 10.0,
                engine_ms_samples: vec![10.0, 10.5],
            }],
        };
        let json = report.to_json();
        let solver = parse_rows(&json, "solver");
        assert_eq!(solver.len(), 2);
        assert_eq!(row_value(&solver[0], "states"), Some(128.0));
        assert_eq!(row_value(&solver[1], "states"), Some(512.0));
        assert_eq!(row_value(&solver[1], "csr_serial_ms"), Some(3.0));
        assert_eq!(
            row_value(&solver[1], "csr_serial_ms_samples"),
            None,
            "sample arrays stay out of the flat rows"
        );
        let similarity = parse_rows(&json, "similarity");
        assert_eq!(similarity.len(), 1);
        assert_eq!(row_value(&similarity[0], "engine_ms"), Some(10.0));
        assert!(parse_rows(&json, "missing").is_empty());
    }

    #[test]
    fn fleet_json_round_trips_through_the_gate_parser() {
        let report = FleetReport {
            threads: 4,
            batch: 64,
            horizon_s: 1500.0,
            every_s: 600.0,
            rows: vec![FleetRow {
                devices: 1024,
                cohorts: 2,
                ticks: 1_536_000,
                inline_wall_ms: 8000.0,
                pool_wall_ms: 2000.0,
                pool_wall_ms_samples: vec![2000.0, 2080.0, 2040.0],
                inline_recalibrations: 2048,
                pool_completed: 4,
                pool_submitted: 2048,
                pool_coalesced: 2040,
                pool_dropped: 0,
                staleness_p50_s: 0.0,
                staleness_p95_s: 12.0,
                staleness_p99_s: 40.0,
                staleness_p99_s_samples: vec![40.0, 42.0],
                staleness_max_s: 300.0,
                lifetime_p50_s: 1500.0,
                hotspot_p95_c: 41.5,
            }],
            arena: vec![ArenaRow {
                devices: 1_000_000,
                shard_devices: 4096,
                cohorts: 2,
                ticks: 50_000_000,
                wall_ms: 500_000.0,
                wall_ms_samples: vec![500_000.0],
                peak_rss_kb: 180_000,
                recalibrations: 5_000_000,
                pool_completed: 10,
                pool_dropped: 0,
                staleness_p99_s: 0.1,
                lifetime_p50_s: 1500.0,
                hotspot_p95_c: 41.5,
            }],
        };
        let json = report.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        let rows = parse_rows(&json, "fleet");
        assert_eq!(rows.len(), 1);
        assert_eq!(row_value(&rows[0], "devices"), Some(1024.0));
        assert_eq!(row_value(&rows[0], "pool_wall_ms"), Some(2000.0));
        assert_eq!(row_value(&rows[0], "speedup"), Some(4.0));
        assert_eq!(row_value(&rows[0], "pool_dropped"), Some(0.0));
        let arena = parse_rows(&json, "arena");
        assert_eq!(arena.len(), 1);
        assert_eq!(row_value(&arena[0], "devices"), Some(1_000_000.0));
        assert_eq!(row_value(&arena[0], "wall_ms"), Some(500_000.0));
        assert_eq!(row_value(&arena[0], "devices_per_s"), Some(2000.0));
        assert_eq!(row_value(&arena[0], "peak_rss_kb"), Some(180_000.0));
    }

    fn serve_row(overload_x: usize) -> ServeRow {
        ServeRow {
            overload_x,
            cohorts: 4,
            devices: 4 * overload_x,
            windows: 3,
            wall_ms: 120.0,
            wall_ms_samples: vec![120.0, 125.0, 122.0],
            staleness_p99_s: 45.0,
            staleness_p99_s_samples: vec![45.0, 47.0],
            staleness_hot_p99_s: 45.0,
            staleness_normal_p99_s: 20.0,
            staleness_cold_p99_s: 5.0,
            shed_fraction: 0.75,
            submitted: 48,
            admitted: 12,
            coalesced: 0,
            replaced: 36,
            shed: 0,
            backpressure: 0,
            completed: 12,
            abandoned: 0,
            max_gap_windows: 1,
            starvation_free: true,
            phase_queue_p99_s: 30.0,
            phase_lane_p99_s: 10.0,
            phase_solve_p99_s: 0.5,
            phase_publish_adopt_p99_s: 4.5,
        }
    }

    #[test]
    fn serve_json_round_trips_through_the_gate_parser() {
        let report = ServeReport {
            threads: 4,
            reps: 3,
            window_s: 1200.0,
            windows: 3,
            rows: vec![serve_row(1), serve_row(4)],
        };
        let json = report.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        let rows = parse_rows(&json, "serve");
        assert_eq!(rows.len(), 2);
        assert_eq!(row_value(&rows[0], "overload_x"), Some(1.0));
        assert_eq!(row_value(&rows[1], "overload_x"), Some(4.0));
        assert_eq!(row_value(&rows[1], "wall_ms"), Some(120.0));
        assert_eq!(row_value(&rows[1], "staleness_p99_s"), Some(45.0));
        assert_eq!(row_value(&rows[1], "shed_fraction"), Some(0.75));
        assert_eq!(row_value(&rows[1], "starvation_free"), Some(1.0));
        assert_eq!(row_value(&rows[1], "submissions_per_s"), Some(400.0));
        assert_eq!(row_value(&rows[1], "phase_queue_p99_s"), Some(30.0));
        assert_eq!(row_value(&rows[1], "phase_publish_adopt_p99_s"), Some(4.5));
        assert_eq!(
            row_value(&rows[1], "wall_ms_samples"),
            None,
            "sample arrays stay out of the flat rows"
        );
    }

    #[test]
    fn a_rowless_serve_report_still_carries_the_section() {
        let report = ServeReport {
            threads: 1,
            reps: 1,
            window_s: 1200.0,
            windows: 2,
            ..ServeReport::default()
        };
        let json = report.to_json();
        assert!(json.contains("\"serve\": []"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(parse_rows(&json, "serve").is_empty());
        let degenerate = ServeRow {
            wall_ms: 0.0,
            ..serve_row(1)
        };
        assert_eq!(degenerate.submissions_per_s(), 0.0);
    }

    #[test]
    fn an_arenaless_fleet_report_still_carries_the_section() {
        // The gate treats an empty `"arena"` array as a clean section
        // skip; an absent key would be indistinguishable from a corrupt
        // report in older parsers, so the section is always emitted.
        let report = FleetReport {
            threads: 1,
            batch: 64,
            horizon_s: 1500.0,
            every_s: 300.0,
            ..FleetReport::default()
        };
        let json = report.to_json();
        assert!(json.contains("\"arena\": []"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(parse_rows(&json, "arena").is_empty());
    }

    #[test]
    fn every_ratio_helper_guards_zero_denominators() {
        let solver = SolverRow {
            states: 0,
            action_nodes: 0,
            outcomes: 0,
            iterations: 0,
            nested_ms: 0.0,
            csr_serial_ms: 0.0,
            csr_parallel_ms: 0.0,
            csr_serial_ms_samples: Vec::new(),
        };
        assert_eq!(solver.speedup_serial(), 0.0);
        assert_eq!(solver.speedup_parallel(), 0.0);
        let similarity = SimilarityRow {
            states: 0,
            reference_ms: 5.0,
            engine_ms: 0.0,
            engine_ms_samples: Vec::new(),
        };
        assert_eq!(similarity.speedup(), 0.0);
        let recal = RecalRow {
            states: 0,
            action_nodes: 0,
            outcomes: 0,
            levels: Vec::new(),
            warm_final_sweeps: 0,
            cold_final_sweeps: 0,
            warm_total_sweeps: 0,
            cold_total_sweeps: 0,
            warm_ms: 0.0,
            warm_ms_samples: Vec::new(),
            cold_ms: 7.0,
            f32_ms: 0.0,
            f32_max_abs_err: 0.0,
        };
        assert_eq!(recal.speedup(), 0.0);
        assert!(recal.sweep_ratio().is_finite(), "max(1) guards the sweeps");
        let fleet = FleetRow {
            devices: 16,
            cohorts: 0,
            ticks: 0,
            inline_wall_ms: 0.0,
            pool_wall_ms: 0.0,
            pool_wall_ms_samples: Vec::new(),
            inline_recalibrations: 0,
            pool_completed: 0,
            pool_submitted: 0,
            pool_coalesced: 0,
            pool_dropped: 0,
            staleness_p50_s: 0.0,
            staleness_p95_s: 0.0,
            staleness_p99_s: 0.0,
            staleness_p99_s_samples: Vec::new(),
            staleness_max_s: 0.0,
            lifetime_p50_s: 0.0,
            hotspot_p95_c: 0.0,
        };
        assert_eq!(fleet.inline_devices_per_s(), 0.0);
        assert_eq!(fleet.pool_devices_per_s(), 0.0);
        assert_eq!(fleet.speedup(), 0.0);
        let arena = ArenaRow {
            devices: 16,
            shard_devices: 4,
            cohorts: 0,
            ticks: 0,
            wall_ms: 0.0,
            wall_ms_samples: Vec::new(),
            peak_rss_kb: 0,
            recalibrations: 0,
            pool_completed: 0,
            pool_dropped: 0,
            staleness_p99_s: 0.0,
            lifetime_p50_s: 0.0,
            hotspot_p95_c: 0.0,
        };
        assert_eq!(arena.devices_per_s(), 0.0);
        let obs = ObsOverheadReport {
            obs_compiled: false,
            devices: 256,
            reps: 3,
            wall_off_ms: 0.0,
            wall_on_ms: 0.0,
        };
        assert_eq!(obs.devices_per_s_off(), 0.0);
        assert_eq!(obs.devices_per_s_on(), 0.0);
        assert_eq!(obs.overhead_pct(), 0.0);
        // Negative denominators are as degenerate as zero ones.
        assert_eq!(guarded_ratio(1.0, -3.0), 0.0);
        assert_eq!(guarded_ratio(6.0, 3.0), 2.0);
    }

    #[test]
    fn obs_overhead_json_round_trips_through_the_gate_parser() {
        let report = ObsOverheadReport {
            obs_compiled: true,
            devices: 1024,
            reps: 3,
            wall_off_ms: 800.0,
            wall_on_ms: 820.0,
        };
        let json = report.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        let rows = parse_rows(&json, "obs_overhead");
        assert_eq!(rows.len(), 1);
        assert_eq!(row_value(&rows[0], "devices"), Some(1024.0));
        assert_eq!(row_value(&rows[0], "wall_on_ms"), Some(820.0));
        assert_eq!(row_value(&rows[0], "overhead_pct"), Some(2.5));
    }

    #[test]
    fn registry_metrics_json_round_trips_through_the_gate_parser() {
        // `export::metrics_json` promises a BENCH-shaped report; this is
        // the consumer-side proof — the flat row the registry emits is
        // readable with the same parser the perf gate uses.
        let registry = capman_obs::Registry::new();
        registry.counter("fleet_devices_total", "Devices").add(4096);
        registry.gauge("pool_queue_depth", "Depth").set(3);
        let h = registry.histogram("adoption_staleness_s", "Staleness", &[0.1, 1.0, 10.0]);
        for _ in 0..99 {
            h.observe(0.05);
        }
        h.observe(5.0);
        let json = capman_obs::export::metrics_json(&registry.snapshot());
        let rows = parse_rows(&json, "metrics");
        assert_eq!(rows.len(), 1, "one flat row per snapshot");
        assert_eq!(row_value(&rows[0], "fleet_devices_total"), Some(4096.0));
        assert_eq!(row_value(&rows[0], "pool_queue_depth"), Some(3.0));
        assert_eq!(
            row_value(&rows[0], "adoption_staleness_s_count"),
            Some(100.0)
        );
        assert_eq!(row_value(&rows[0], "adoption_staleness_s_p99"), Some(0.1));
    }

    #[test]
    fn parse_rows_skips_nested_level_arrays() {
        let json = recal_report().to_json();
        let rows = parse_rows(&json, "recalibration");
        assert_eq!(rows.len(), 1);
        // Flat keys of the row parse...
        assert_eq!(row_value(&rows[0], "states"), Some(256.0));
        assert_eq!(row_value(&rows[0], "cold_total_sweeps"), Some(1160.0));
        assert_eq!(row_value(&rows[0], "f32_max_abs_err"), Some(3.0e-4));
        // ...while the nested per-level keys stay out of the flat row.
        assert_eq!(row_value(&rows[0], "warm_sweeps"), None);
    }
}
