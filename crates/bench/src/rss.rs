//! Peak-RSS introspection for the bench binaries.
//!
//! The arena fleet bench reports memory alongside throughput: the whole
//! point of the structure-of-arrays path is that a million-device run
//! costs roughly the memory of a 64k-device run. The kernel already
//! tracks the number we want — `VmHWM`, the process's resident-set
//! high-water mark — so the bench reads it instead of instrumenting the
//! allocator.

/// The process's peak resident set size (`VmHWM`) in kibibytes, read
/// from `/proc/self/status`. Returns 0 where the field is unavailable
/// (non-Linux platforms), so callers must treat 0 as "unknown", never
/// as "tiny".
///
/// The high-water mark is process-wide and monotone: sampled after each
/// benchmark row it attributes growth to that row only when rows run in
/// ascending memory order, which is how `bench_fleet` orders its arena
/// ladder.
pub fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|line| line.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().strip_suffix("kB"))
        .and_then(|kb| kb.trim().parse().ok())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vmhwm_reads_positive_on_linux() {
        let kb = peak_rss_kb();
        if cfg!(target_os = "linux") {
            assert!(kb > 0, "a running process has resident memory");
        }
    }

    #[test]
    fn the_mark_is_monotone() {
        let before = peak_rss_kb();
        // Touch a few megabytes so the mark has a chance to move; the
        // assertion is only that it never goes down.
        let block = vec![1u8; 4 << 20];
        std::hint::black_box(&block);
        assert!(peak_rss_kb() >= before);
    }
}
