//! Data-oriented device arenas: the million-device fleet path.
//!
//! The roster-based [`FleetRunner`](crate::runner::FleetRunner) carries
//! per-device baggage that is invisible at 10⁴ devices and fatal at
//! 10⁶: a materialized [`DeviceSpec`](crate::profile::DeviceSpec)
//! roster, a full workload trace per
//! device, a boxed policy per device, a telemetry series per device and
//! a `DeviceSummary` vector for the whole fleet. [`ArenaRunner`] keeps
//! none of it:
//!
//! * devices come from a [`FleetPlan`] that *derives* specs
//!   arithmetically instead of storing them;
//! * each shard owns a [`DeviceArena`] — structure-of-arrays columns
//!   (physics cores, streaming trace cursors, enum-dispatched policies,
//!   constant-memory telemetry counters, done flags) indexed by dense
//!   [`DeviceHandle`]s — so live state exists only for the
//!   `shard_devices` devices currently in flight;
//! * traces are generated on the fly by
//!   [`TraceCursor`](capman_workload::TraceCursor) from the device's
//!   `trace_seed`, bounded by a sliding window instead of the horizon;
//! * results fold into per-shard [`QuantileSketch`]es and scalar
//!   accumulators that merge as shards finish — the per-device summary
//!   vector is never materialized unless
//!   [`ArenaConfig::collect_summaries`] asks for it (the determinism
//!   tests do; a million-device run does not).
//!
//! Peak RSS is therefore bounded by `shard_devices × columns` plus the
//! fixed sketch geometry, independent of fleet size, and every number
//! that comes out is bit-identical to the roster runner over the same
//! plan (the equivalence tests below and the arena proptests pin this).
//!
//! [`ArenaConfig::time_slice_s`] additionally schedules shards in
//! simulated-time windows: every live device advances to the window
//! boundary before any advances past it. Windowing changes nothing
//! numerically (the per-device step sequence is identical — see
//! `DeviceSim::run_until`); it exists so shard workers interleave
//! progress, which keeps pool-mode calibration requests flowing in
//! rough simulated-time order instead of device order.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use capman_core::experiments::build_pack;
use capman_core::policy::Policy;
use capman_core::sim::DeviceSim;
use capman_core::telemetry::{LeanTelemetry, ShardThroughput};
use capman_device::phone::PhoneProfile;
use capman_device::power::PowerModel;
use capman_workload::TraceCursor;
use rayon::prelude::*;

use crate::dispatch::FleetPolicy;
use crate::pool::{CalibrationBackend, CalibrationPool, PoolConfig, PoolCounters};
use crate::profile::{FleetPlan, FleetProfile};
use crate::runner::{
    hotspot_sketch, lifetime_sketch, record_shard_metrics, staleness_sketch, CalibrationMode,
    DeviceSummary, FleetAggregate, FleetResult,
};
use crate::sketch::QuantileSketch;

/// Dense index of one device's row across a [`DeviceArena`]'s columns.
///
/// Handles are shard-local: handle `h` of shard `s` is fleet device
/// `s × shard_devices + h`. `u32` bounds a shard at ~4 billion devices,
/// which is not the binding constraint (memory is).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeviceHandle(u32);

impl DeviceHandle {
    /// The handle for column row `index`.
    pub fn new(index: u32) -> Self {
        DeviceHandle(index)
    }

    /// The column row this handle indexes.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Arena-run configuration.
#[derive(Debug, Clone, Copy)]
pub struct ArenaConfig {
    /// Calibration execution mode (shared with the roster runner).
    pub mode: CalibrationMode,
    /// Devices resident per shard arena — the memory knob: peak RSS
    /// scales with this, not with the fleet.
    pub shard_devices: usize,
    /// Simulated seconds per scheduling window. `f64::INFINITY` runs
    /// each shard's devices straight through (the fast default);
    /// a finite slice interleaves devices at window granularity.
    pub time_slice_s: f64,
    /// Pool sizing (ignored in [`CalibrationMode::Inline`]).
    pub pool: PoolConfig,
    /// Deal shards across cores (`false`: same shards, calling thread).
    pub parallel: bool,
    /// Also materialize the per-device summary vector (fleet order).
    /// Costs O(devices) memory — for tests and small fleets only.
    pub collect_summaries: bool,
}

impl Default for ArenaConfig {
    fn default() -> Self {
        ArenaConfig {
            mode: CalibrationMode::Inline,
            shard_devices: 256,
            time_slice_s: f64::INFINITY,
            pool: PoolConfig::default(),
            parallel: true,
            collect_summaries: false,
        }
    }
}

/// Cohort-shared immutable context, hoisted out of the per-device rows:
/// one profile/phone/power-model set per cohort per shard, `Arc`-shared
/// into every [`DeviceSim`] of the cohort.
struct CohortCtx {
    profile: Arc<FleetProfile>,
    phone: Arc<PhoneProfile>,
    model: Arc<PowerModel>,
}

impl CohortCtx {
    fn new(profile: &Arc<FleetProfile>) -> Self {
        CohortCtx {
            profile: Arc::clone(profile),
            phone: Arc::new(profile.phone.clone()),
            model: Arc::new(profile.phone.power_model()),
        }
    }
}

/// Structure-of-arrays state for one shard's resident devices.
///
/// Each column holds one facet of every device, indexed by
/// [`DeviceHandle`]: `sims` the physics core (pack SoC, thermal
/// temperatures, power-state machine, accumulators), `cursors` the
/// streaming trace state (generator RNG counter plus its sliding
/// window), `policies` the enum-dispatched scheduler state, `telemetry`
/// the constant-memory tick/staleness counters, `done` the completion
/// flags. Everything cohort-shared lives once in the `CohortCtx` cache,
/// not in the rows.
pub struct DeviceArena {
    ids: Vec<u64>,
    cohorts: Vec<u32>,
    sims: Vec<DeviceSim>,
    cursors: Vec<TraceCursor>,
    policies: Vec<FleetPolicy>,
    telemetry: Vec<LeanTelemetry>,
    done: Vec<bool>,
    active: usize,
}

impl DeviceArena {
    /// Build the arena for plan devices `start .. start + count`.
    ///
    /// # Panics
    ///
    /// Panics if the range leaves the plan or exceeds `u32` handles.
    pub fn build(
        plan: &FleetPlan,
        start: usize,
        count: usize,
        backend: Option<&Arc<dyn CalibrationBackend>>,
    ) -> Self {
        assert!(start + count <= plan.len(), "device range leaves the plan");
        assert!(u32::try_from(count).is_ok(), "handles are u32");
        let mut ctxs: Vec<Option<CohortCtx>> = (0..plan.profiles().len()).map(|_| None).collect();
        let mut arena = DeviceArena {
            ids: Vec::with_capacity(count),
            cohorts: Vec::with_capacity(count),
            sims: Vec::with_capacity(count),
            cursors: Vec::with_capacity(count),
            policies: Vec::with_capacity(count),
            telemetry: Vec::with_capacity(count),
            done: vec![false; count],
            active: count,
        };
        for i in start..start + count {
            let spec = plan.spec(i);
            if ctxs[spec.cohort].is_none() {
                ctxs[spec.cohort] = Some(CohortCtx::new(&plan.profiles()[spec.cohort]));
            }
            let ctx = ctxs[spec.cohort].as_ref().expect("just initialised");
            let profile = &ctx.profile;
            arena.ids.push(spec.device_id);
            arena.cohorts.push(spec.cohort as u32);
            arena.sims.push(DeviceSim::new(
                Arc::clone(&ctx.phone),
                Arc::clone(&ctx.model),
                build_pack(profile.kind),
                profile.device_config(&spec),
            ));
            arena.cursors.push(TraceCursor::new(
                profile.workload,
                profile.config.max_horizon_s,
                spec.trace_seed,
                spec.perturbation,
            ));
            // Only an Oracle cohort pays for a materialized trace (the
            // clairvoyant baseline owns its copy by definition).
            arena
                .policies
                .push(FleetPolicy::for_device(profile, &spec, backend, || {
                    profile.trace(&spec)
                }));
            arena.telemetry.push(LeanTelemetry::default());
        }
        arena
    }

    /// Devices resident in this arena.
    pub fn len(&self) -> usize {
        self.sims.len()
    }

    /// Whether the arena holds no devices.
    pub fn is_empty(&self) -> bool {
        self.sims.is_empty()
    }

    /// Devices whose discharge cycle has not ended yet.
    pub fn active(&self) -> usize {
        self.active
    }

    /// Advance every live device to simulated time `t_end` (or its
    /// cycle end, whichever comes first). Returns the remaining active
    /// count.
    pub fn run_window(&mut self, t_end: f64) -> usize {
        for h in 0..self.sims.len() {
            if self.done[h] {
                continue;
            }
            if self.sims[h]
                .run_until(
                    &mut self.policies[h],
                    &mut self.cursors[h],
                    &mut self.telemetry[h],
                    t_end,
                )
                .is_some()
            {
                self.done[h] = true;
                self.active -= 1;
            }
        }
        self.active
    }

    /// The device's summary row (valid once its cycle ended; mid-run it
    /// reflects progress so far).
    pub fn summary(&self, handle: DeviceHandle) -> DeviceSummary {
        let h = handle.index();
        let sim = &self.sims[h];
        DeviceSummary {
            device_id: self.ids[h],
            cohort: self.cohorts[h] as usize,
            service_time_s: sim.time_s(),
            work_served: sim.work_served(),
            energy_delivered_j: sim.energy_delivered_j(),
            max_hotspot_c: sim.peak_hotspot_c(),
            switches: sim.switches(),
            ticks: self.telemetry[h].samples,
            recalibrations: self.policies[h].recalibrations(),
            max_staleness_s: self.telemetry[h].max_staleness_s,
        }
    }
}

/// The streaming aggregation state: scalar accumulators plus sketches
/// in the canonical fleet geometries. Each in-flight shard folds into a
/// private `StreamAgg` and absorbs it into the shared one the moment it
/// finishes, so live sketch memory scales with *concurrent* shards, not
/// the shard count. Bin-wise `u64` adds commute, so the absorb order —
/// whatever the scheduler makes it — yields exactly the roster runner's
/// serial fold.
struct StreamAgg {
    devices: u64,
    ticks: u64,
    recalibrations: u64,
    lifetime_s: QuantileSketch,
    hotspot_c: QuantileSketch,
    staleness_s: QuantileSketch,
}

impl StreamAgg {
    fn new(lifetime_hi: f64) -> Self {
        StreamAgg {
            devices: 0,
            ticks: 0,
            recalibrations: 0,
            lifetime_s: lifetime_sketch(lifetime_hi),
            hotspot_c: hotspot_sketch(),
            staleness_s: staleness_sketch(),
        }
    }

    fn insert(&mut self, s: &DeviceSummary) {
        self.devices += 1;
        self.ticks += s.ticks;
        self.recalibrations += s.recalibrations;
        self.lifetime_s.insert(s.service_time_s);
        self.hotspot_c.insert(s.max_hotspot_c);
        self.staleness_s.insert(s.max_staleness_s);
    }

    fn absorb(&mut self, shard: &StreamAgg) {
        self.devices += shard.devices;
        self.ticks += shard.ticks;
        self.recalibrations += shard.recalibrations;
        self.lifetime_s.merge(&shard.lifetime_s);
        self.hotspot_c.merge(&shard.hotspot_c);
        self.staleness_s.merge(&shard.staleness_s);
    }
}

/// The per-shard slot that outlives the shard: its throughput row and —
/// only when [`ArenaConfig::collect_summaries`] asks — its summaries.
/// A default cell is a few pointers, so pre-sizing one per shard stays
/// cheap even at millions of devices.
#[derive(Default)]
struct ShardCell {
    throughput: Option<ShardThroughput>,
    summaries: Vec<DeviceSummary>,
}

/// The lifetime sketch's upper bound for a plan (the roster runner's
/// rule: the longest cohort horizon, at least 1 s).
fn plan_lifetime_hi(plan: &FleetPlan) -> f64 {
    plan.profiles()
        .iter()
        .map(|p| p.config.max_horizon_s)
        .fold(1.0, f64::max)
}

/// Runs [`FleetPlan`]s through shard arenas under an [`ArenaConfig`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ArenaRunner {
    config: ArenaConfig,
}

impl ArenaRunner {
    /// A runner with the given configuration.
    pub fn new(config: ArenaConfig) -> Self {
        ArenaRunner { config }
    }

    /// The configuration this runner applies.
    pub fn config(&self) -> ArenaConfig {
        self.config
    }

    /// Simulate every device of the plan and aggregate. The summary
    /// vector is empty unless [`ArenaConfig::collect_summaries`] is set.
    ///
    /// # Panics
    ///
    /// Panics if the plan is empty, the shard size is zero or the time
    /// slice is not positive.
    pub fn run(&self, plan: &FleetPlan) -> FleetResult {
        self.run_impl(plan, None)
    }

    /// Like [`run`], but against a caller-owned calibration backend
    /// (e.g. a resident calibration service shared across runs) instead
    /// of a pool this runner spawns. [`ArenaConfig::mode`] and
    /// [`ArenaConfig::pool`] are ignored; the caller keeps drain and
    /// counter responsibility, so the result's pool counters are zero.
    ///
    /// # Panics
    ///
    /// Panics on the same degenerate configs as [`run`].
    ///
    /// [`run`]: ArenaRunner::run
    pub fn run_with_backend(
        &self,
        plan: &FleetPlan,
        backend: Arc<dyn CalibrationBackend>,
    ) -> FleetResult {
        self.run_impl(plan, Some(backend))
    }

    fn run_impl(
        &self,
        plan: &FleetPlan,
        external: Option<Arc<dyn CalibrationBackend>>,
    ) -> FleetResult {
        assert!(!plan.is_empty(), "cannot run an empty plan");
        assert!(self.config.shard_devices > 0, "shard size must be positive");
        assert!(
            self.config.time_slice_s > 0.0,
            "time slice must be positive"
        );
        let _run_span = capman_obs::span("fleet_run", plan.len() as u64);
        let t0 = Instant::now();
        let pool = match (&external, self.config.mode) {
            (Some(_), _) | (None, CalibrationMode::Inline) => None,
            (None, CalibrationMode::Pool) => {
                let specs: Vec<_> = plan.profiles().iter().map(|p| p.calibrator).collect();
                Some(Arc::new(CalibrationPool::spawn(&specs, self.config.pool)))
            }
        };
        // Shards see the backend surface only; the concrete pool handle
        // stays here for drain + counters once the shards quiesce.
        let backend: Option<Arc<dyn CalibrationBackend>> =
            external.or_else(|| pool.clone().map(|p| p as Arc<dyn CalibrationBackend>));

        let shard_devices = self.config.shard_devices;
        let n_shards = plan.len().div_ceil(shard_devices);
        let lifetime_hi = plan_lifetime_hi(plan);
        let agg = Mutex::new(StreamAgg::new(lifetime_hi));
        let mut cells: Vec<ShardCell> = (0..n_shards).map(|_| ShardCell::default()).collect();
        if self.config.parallel {
            cells.par_chunks_mut(1).enumerate().for_each(|shard, cell| {
                run_arena_shard(
                    plan,
                    shard,
                    &self.config,
                    backend.as_ref(),
                    &agg,
                    &mut cell[0],
                );
            });
        } else {
            for (shard, cell) in cells.iter_mut().enumerate() {
                run_arena_shard(plan, shard, &self.config, backend.as_ref(), &agg, cell);
            }
        }

        let merged = agg.into_inner().expect("a shard panicked mid-merge");
        let mut shards = Vec::with_capacity(n_shards);
        let mut summaries = Vec::new();
        if self.config.collect_summaries {
            summaries.reserve_exact(plan.len());
        }
        for cell in cells {
            shards.push(cell.throughput.expect("every shard cell ran exactly once"));
            summaries.extend(cell.summaries);
        }
        let pool_counters = match &pool {
            Some(pool) => {
                pool.drain();
                pool.counters()
            }
            None => PoolCounters::default(),
        };
        FleetResult {
            summaries,
            aggregate: FleetAggregate {
                devices: merged.devices,
                ticks: merged.ticks,
                recalibrations: merged.recalibrations,
                lifetime_s: merged.lifetime_s,
                hotspot_c: merged.hotspot_c,
                staleness_s: merged.staleness_s,
                pool: pool_counters,
                shards,
                wall_ms: t0.elapsed().as_secs_f64() * 1e3,
            },
        }
    }
}

/// Run one shard: build its arena, drive it window by window, fold the
/// finished devices into the cell's streaming aggregation.
fn run_arena_shard(
    plan: &FleetPlan,
    shard: usize,
    config: &ArenaConfig,
    backend: Option<&Arc<dyn CalibrationBackend>>,
    agg: &Mutex<StreamAgg>,
    cell: &mut ShardCell,
) {
    let _shard_span = capman_obs::span("fleet_shard", shard as u64);
    let t_shard = Instant::now();
    let start = shard * config.shard_devices;
    let count = config.shard_devices.min(plan.len() - start);
    let mut arena = DeviceArena::build(plan, start, count, backend);

    let mut t_end = config.time_slice_s;
    while arena.run_window(t_end) > 0 {
        t_end += config.time_slice_s;
    }

    let lifetime_hi = plan_lifetime_hi(plan);
    let mut fold = StreamAgg::new(lifetime_hi);
    if config.collect_summaries {
        cell.summaries.reserve_exact(count);
    }
    for h in 0..count {
        let s = arena.summary(DeviceHandle::new(h as u32));
        fold.insert(&s);
        if config.collect_summaries {
            cell.summaries.push(s);
        }
    }
    record_shard_metrics(fold.devices, fold.ticks);
    cell.throughput = Some(ShardThroughput {
        shard,
        devices: fold.devices,
        ticks: fold.ticks,
        wall_ms: t_shard.elapsed().as_secs_f64() * 1e3,
    });
    agg.lock().expect("aggregate mutex poisoned").absorb(&fold);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Fleet;
    use crate::runner::{FleetConfig, FleetRunner};
    use capman_core::experiments::PolicyKind;
    use capman_workload::WorkloadKind;

    fn profiles() -> Vec<FleetProfile> {
        let mut capman = FleetProfile::capman("video", WorkloadKind::Video, 21);
        capman.config.max_horizon_s = 1500.0;
        capman.calibrator.every_s = 600.0;
        let mut dual = FleetProfile::capman("pcmark-dual", WorkloadKind::Pcmark, 22);
        dual.kind = PolicyKind::Dual;
        dual.config.max_horizon_s = 1500.0;
        dual.config.tec_enabled = false;
        vec![capman, dual]
    }

    fn assert_aggregates_match(a: &FleetAggregate, b: &FleetAggregate) {
        assert_eq!(a.devices, b.devices);
        assert_eq!(a.ticks, b.ticks);
        assert_eq!(a.recalibrations, b.recalibrations);
        assert_eq!(a.lifetime_s, b.lifetime_s);
        assert_eq!(a.hotspot_c, b.hotspot_c);
        assert_eq!(a.staleness_s, b.staleness_s);
    }

    #[test]
    fn arena_matches_roster_runner_bitwise() {
        let fleet = Fleet::build(profiles(), 3);
        let roster = FleetRunner::new(FleetConfig::default()).run(&fleet);
        let plan = FleetPlan::new(profiles(), 3);
        let arena = ArenaRunner::new(ArenaConfig {
            shard_devices: 4,
            collect_summaries: true,
            ..ArenaConfig::default()
        })
        .run(&plan);
        assert_eq!(roster.summaries, arena.summaries);
        assert_aggregates_match(&roster.aggregate, &arena.aggregate);
    }

    #[test]
    fn time_sliced_windows_match_single_pass_bitwise() {
        let plan = FleetPlan::new(profiles(), 2);
        let single = ArenaRunner::new(ArenaConfig {
            shard_devices: 3,
            collect_summaries: true,
            ..ArenaConfig::default()
        })
        .run(&plan);
        let sliced = ArenaRunner::new(ArenaConfig {
            shard_devices: 3,
            time_slice_s: 250.0,
            collect_summaries: true,
            ..ArenaConfig::default()
        })
        .run(&plan);
        assert_eq!(single.summaries, sliced.summaries);
        assert_aggregates_match(&single.aggregate, &sliced.aggregate);
    }

    #[test]
    fn summaries_stay_off_unless_collected() {
        let plan = FleetPlan::new(profiles(), 2);
        let result = ArenaRunner::new(ArenaConfig {
            shard_devices: 2,
            ..ArenaConfig::default()
        })
        .run(&plan);
        assert!(result.summaries.is_empty());
        assert_eq!(result.aggregate.devices, plan.len() as u64);
        assert_eq!(result.aggregate.lifetime_s.count(), plan.len() as u64);
        let shard_devices: u64 = result.aggregate.shards.iter().map(|s| s.devices).sum();
        assert_eq!(shard_devices, result.aggregate.devices);
        let shard_ticks: u64 = result.aggregate.shards.iter().map(|s| s.ticks).sum();
        assert_eq!(shard_ticks, result.aggregate.ticks);
    }

    #[test]
    fn pool_mode_envelope_holds_in_the_arena() {
        let plan = FleetPlan::new(profiles(), 2);
        let result = ArenaRunner::new(ArenaConfig {
            mode: CalibrationMode::Pool,
            shard_devices: 2,
            collect_summaries: true,
            ..ArenaConfig::default()
        })
        .run(&plan);
        let agg = &result.aggregate;
        assert_eq!(agg.devices as usize, plan.len());
        assert_eq!(agg.pool.dropped, 0, "bounded queue must not overflow here");
        assert_eq!(agg.pool.completed, agg.pool.enqueued);
        assert!(agg.pool.submitted >= agg.pool.enqueued);
        let adopted: u64 = result
            .summaries
            .iter()
            .filter(|s| s.cohort == 0)
            .map(|s| s.recalibrations)
            .sum();
        assert!(adopted > 0, "pooled calibrations must reach arena devices");
    }

    #[test]
    fn serial_arena_matches_parallel_arena() {
        let plan = FleetPlan::new(profiles(), 2);
        let mk = |parallel| {
            ArenaRunner::new(ArenaConfig {
                shard_devices: 3,
                parallel,
                collect_summaries: true,
                ..ArenaConfig::default()
            })
            .run(&plan)
        };
        let serial = mk(false);
        let parallel = mk(true);
        assert_eq!(serial.summaries, parallel.summaries);
        assert_aggregates_match(&serial.aggregate, &parallel.aggregate);
    }
}
