//! The battery switch facility (Figs. 9–11).
//!
//! The prototype converts the scheduler's decisions into a TTL control
//! signal: each voltage flip (`0 -> 1` or `1 -> 0`) switches the MOS pair
//! of the comparator circuit (LM339AD) and hands the load to the other
//! battery. The switch taps a 20 kHz oscillator, so decisions are
//! quantised to 50 microsecond ticks and complete within milliseconds.
//! Every flip dissipates a small amount of energy as heat — frequent
//! switching is exactly what wakes the TEC in the paper's evaluation.

use serde::{Deserialize, Serialize};

use crate::chemistry::Class;

/// Comparator output for the high TTL level, volts (LM339AD behaviour).
pub const TTL_HIGH_V: f64 = 3.5;
/// Comparator output for the low TTL level, volts.
pub const TTL_LOW_V: f64 = 0.3;

/// Configuration of the switch facility.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwitchConfig {
    /// Oscillator frequency in hertz (20 kHz in the prototype).
    pub oscillator_hz: f64,
    /// Time for a flip to complete, seconds (millisecond scale).
    pub latency_s: f64,
    /// Energy dissipated per flip, joules.
    pub flip_energy_j: f64,
    /// Fraction of the flip energy that lands as heat on the battery spot.
    pub heat_fraction: f64,
}

impl Default for SwitchConfig {
    fn default() -> Self {
        SwitchConfig {
            oscillator_hz: 20_000.0,
            latency_s: 2.0e-3,
            flip_energy_j: 0.05,
            heat_fraction: 0.8,
        }
    }
}

/// A completed battery switch event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwitchEvent {
    /// Time the flip was requested, seconds.
    pub requested_at: f64,
    /// Time the new battery carries the load, seconds.
    pub completed_at: f64,
    /// The battery now active.
    pub target: Class,
    /// Energy dissipated by the flip, joules.
    pub energy_j: f64,
    /// Portion of `energy_j` that became local heat, joules.
    pub heat_j: f64,
}

/// The switch facility: holds the active battery selection and records the
/// TTL control signal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwitchFacility {
    config: SwitchConfig,
    active: Class,
    signal: Vec<(f64, f64)>,
    flips: u64,
    energy_j: f64,
}

impl SwitchFacility {
    /// Create a facility with the big battery initially active (the phone
    /// boots from the high-energy cell).
    pub fn new(config: SwitchConfig) -> Self {
        SwitchFacility {
            config,
            active: Class::Big,
            signal: vec![(0.0, Self::level_for(Class::Big))],
            flips: 0,
            energy_j: 0.0,
        }
    }

    /// TTL level that selects a battery: high selects LITTLE (the left MOS
    /// tube in Fig. 11), low selects big.
    fn level_for(class: Class) -> f64 {
        match class {
            Class::Little => TTL_HIGH_V,
            Class::Big => TTL_LOW_V,
        }
    }

    /// Request that `target` carry the load from time `now`.
    ///
    /// Returns `None` when the target battery is already active (the
    /// signal holds and nothing is dissipated); otherwise returns the
    /// completed [`SwitchEvent`]. The request time is quantised to the
    /// next oscillator tick.
    pub fn switch_to(&mut self, target: Class, now: f64) -> Option<SwitchEvent> {
        if target == self.active {
            return None;
        }
        let tick = 1.0 / self.config.oscillator_hz;
        let quantised = (now / tick).ceil() * tick;
        let completed = quantised + self.config.latency_s;
        self.active = target;
        self.flips += 1;
        self.energy_j += self.config.flip_energy_j;
        self.signal.push((quantised, Self::level_for(target)));
        Some(SwitchEvent {
            requested_at: now,
            completed_at: completed,
            target,
            energy_j: self.config.flip_energy_j,
            heat_j: self.config.flip_energy_j * self.config.heat_fraction,
        })
    }

    /// The battery currently carrying the load.
    pub fn active(&self) -> Class {
        self.active
    }

    /// Total number of flips so far.
    pub fn flips(&self) -> u64 {
        self.flips
    }

    /// Total switching energy dissipated so far, joules.
    pub fn energy_j(&self) -> f64 {
        self.energy_j
    }

    /// The recorded TTL signal as `(time_s, volts)` level changes —
    /// the trace plotted in Fig. 9.
    pub fn signal(&self) -> &[(f64, f64)] {
        &self.signal
    }

    /// The configuration in use.
    pub fn config(&self) -> &SwitchConfig {
        &self.config
    }
}

impl Default for SwitchFacility {
    fn default() -> Self {
        SwitchFacility::new(SwitchConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_on_big_battery() {
        let s = SwitchFacility::default();
        assert_eq!(s.active(), Class::Big);
        assert_eq!(s.flips(), 0);
        assert_eq!(s.signal().len(), 1);
        assert_eq!(s.signal()[0].1, TTL_LOW_V);
    }

    #[test]
    fn switching_to_same_battery_is_free() {
        let mut s = SwitchFacility::default();
        assert!(s.switch_to(Class::Big, 1.0).is_none());
        assert_eq!(s.flips(), 0);
        assert_eq!(s.energy_j(), 0.0);
    }

    #[test]
    fn flip_costs_energy_and_heat() {
        let mut s = SwitchFacility::default();
        let e = s.switch_to(Class::Little, 1.0).expect("flip");
        assert_eq!(e.target, Class::Little);
        assert!(e.energy_j > 0.0);
        assert!(e.heat_j > 0.0 && e.heat_j <= e.energy_j);
        assert_eq!(s.active(), Class::Little);
        assert_eq!(s.flips(), 1);
    }

    #[test]
    fn request_time_quantised_to_oscillator_tick() {
        let mut s = SwitchFacility::default();
        let e = s.switch_to(Class::Little, 0.000_013).expect("flip");
        let tick = 1.0 / 20_000.0;
        let signal_t = s.signal().last().expect("signal").0;
        assert!((signal_t % tick).abs() < 1e-12 || ((signal_t % tick) - tick).abs() < 1e-12);
        assert!(signal_t >= 0.000_013);
        assert!((e.completed_at - (signal_t + 0.002)).abs() < 1e-12);
    }

    #[test]
    fn signal_alternates_levels_like_fig9() {
        let mut s = SwitchFacility::default();
        // Flip at times 2, 5, 7, 8 as in Fig. 9.
        for t in [2.0, 5.0, 7.0, 8.0] {
            let target = s.active().other();
            s.switch_to(target, t).expect("flip");
        }
        let levels: Vec<f64> = s.signal().iter().map(|&(_, v)| v).collect();
        assert_eq!(
            levels,
            vec![TTL_LOW_V, TTL_HIGH_V, TTL_LOW_V, TTL_HIGH_V, TTL_LOW_V]
        );
        assert_eq!(s.flips(), 4);
    }

    #[test]
    fn accumulated_energy_scales_with_flips() {
        let mut s = SwitchFacility::default();
        for i in 0..10 {
            let target = s.active().other();
            s.switch_to(target, f64::from(i)).expect("flip");
        }
        assert!((s.energy_j() - 10.0 * s.config().flip_energy_j).abs() < 1e-12);
    }
}
