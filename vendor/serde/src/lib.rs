//! Offline stand-in for the `serde` crate.
//!
//! This workspace builds in a sandbox without crates.io access, and no
//! code path actually serialises anything (there is no `serde_json` or
//! other format crate in the dependency tree). The `#[derive(Serialize,
//! Deserialize)]` annotations across the workspace are kept so the code
//! stays source-compatible with real serde: here the traits are pure
//! markers with blanket implementations and the derives expand to
//! nothing.
//!
//! Swapping this for the real crate only requires restoring the
//! crates.io entry in the workspace `Cargo.toml`.

/// Marker for types that real serde could serialise.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker for types that real serde could deserialise.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}

impl<T: ?Sized> DeserializeOwned for T {}

/// Mirror of serde's `de` module for `DeserializeOwned` imports.
pub mod de {
    pub use crate::DeserializeOwned;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

#[cfg(test)]
mod tests {
    use super::*;

    fn takes_serialize<T: Serialize + ?Sized>(_: &T) {}

    #[test]
    fn blanket_impls_cover_everything() {
        takes_serialize(&1_u8);
        takes_serialize(&vec![1.0_f64]);
        takes_serialize("str");
    }
}
