//! Offline stand-in for the `rayon` crate.
//!
//! Implements the slice-parallelism subset the similarity engine uses
//! (`par_chunks_mut().enumerate().for_each(...)`) on top of
//! `std::thread::scope`. Chunks are dealt round-robin to one worker per
//! available core; with a single core (or a single chunk) everything
//! runs inline on the calling thread, so the sequential fallback has no
//! spawn overhead. The names mirror real rayon so switching back to the
//! crates.io crate is a manifest-only change.

use std::num::NonZeroUsize;
use std::sync::OnceLock;

pub mod slice;

/// The re-export surface matching `rayon::prelude`.
pub mod prelude {
    pub use crate::slice::ParallelSliceMut;
}

/// Number of worker threads a parallel call will use.
///
/// Cached after the first call: `available_parallelism` can hit the
/// filesystem (cgroup quotas) on Linux, and hot loops consult this on
/// every parallel sweep.
pub fn current_num_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon stand-in: joined task panicked"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(current_num_threads() >= 1);
    }
}
