//! Aggregation: trials → an analysis table.
//!
//! One row per (variant × task) group: outcome counts, objective
//! moments, and sketch quantiles. The table serialises to a JSON
//! document whose `analysis` section is a flat array of
//! numbers-and-strings rows — the same row shape the perf tooling's
//! `parse_rows` extractor reads, so a lab analysis file can be gated
//! and diffed with the same machinery as a `BENCH_*.json` report.

use capman_fleet::QuantileSketch;

use crate::json::{obj, Json};
use crate::stats;
use crate::trial::{TrialOutcome, TrialResult};

/// Sketch resolution for objective quantiles: with the group's own
/// [min, max] as range, quantiles land within (max−min)/64 of the
/// exact order statistic.
const SKETCH_BINS: usize = 64;

/// Aggregate of one (variant × task) cell across its repeats.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisRow {
    /// Variant name.
    pub variant: String,
    /// Task id.
    pub task_id: String,
    /// Objective name shared by the group's trials.
    pub objective_name: String,
    /// Trials in the group.
    pub n: usize,
    /// Trials that met the service contract.
    pub successes: usize,
    /// Trials that ran but failed it.
    pub failures: usize,
    /// Trials that could not execute.
    pub errors: usize,
    /// Objective mean over executed (non-error) trials.
    pub mean: f64,
    /// Unbiased objective standard deviation.
    pub std: f64,
    /// Smallest objective.
    pub min: f64,
    /// Largest objective.
    pub max: f64,
    /// Median via [`QuantileSketch`].
    pub p50: f64,
    /// 95th percentile via [`QuantileSketch`].
    pub p95: f64,
}

/// The full analysis table of one experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisTable {
    /// Experiment name.
    pub experiment: String,
    /// One row per (variant × task), in first-seen order.
    pub rows: Vec<AnalysisRow>,
}

impl AnalysisTable {
    /// Group `trials` by (variant, task) and reduce each group.
    pub fn from_trials(experiment: &str, trials: &[TrialResult]) -> AnalysisTable {
        let mut groups: Vec<(String, String, Vec<&TrialResult>)> = Vec::new();
        for t in trials {
            match groups
                .iter_mut()
                .find(|(v, id, _)| *v == t.variant && *id == t.task_id)
            {
                Some((_, _, members)) => members.push(t),
                None => groups.push((t.variant.clone(), t.task_id.clone(), vec![t])),
            }
        }
        let rows = groups
            .into_iter()
            .map(|(variant, task_id, members)| reduce(variant, task_id, &members))
            .collect();
        AnalysisTable {
            experiment: experiment.to_string(),
            rows,
        }
    }

    /// The row for a (variant, task) pair.
    pub fn row(&self, variant: &str, task_id: &str) -> Option<&AnalysisRow> {
        self.rows
            .iter()
            .find(|r| r.variant == variant && r.task_id == task_id)
    }

    /// Serialise: `{"experiment": ..., "analysis": [rows...]}`.
    pub fn to_json(&self) -> Json {
        obj(vec![
            ("experiment", Json::Str(self.experiment.clone())),
            (
                "analysis",
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|r| {
                            obj(vec![
                                ("variant", Json::Str(r.variant.clone())),
                                ("task_id", Json::Str(r.task_id.clone())),
                                ("objective", Json::Str(r.objective_name.clone())),
                                ("n", Json::Num(r.n as f64)),
                                ("successes", Json::Num(r.successes as f64)),
                                ("failures", Json::Num(r.failures as f64)),
                                ("errors", Json::Num(r.errors as f64)),
                                ("mean", Json::Num(r.mean)),
                                ("std", Json::Num(r.std)),
                                ("min", Json::Num(r.min)),
                                ("max", Json::Num(r.max)),
                                ("p50", Json::Num(r.p50)),
                                ("p95", Json::Num(r.p95)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

fn reduce(variant: String, task_id: String, members: &[&TrialResult]) -> AnalysisRow {
    let mut successes = 0;
    let mut failures = 0;
    let mut errors = 0;
    let mut objectives = Vec::new();
    let mut objective_name = String::new();
    for t in members {
        match &t.outcome {
            TrialOutcome::Success => successes += 1,
            TrialOutcome::Failure => failures += 1,
            TrialOutcome::Error(_) => {
                errors += 1;
                continue;
            }
        }
        objective_name = t.objective_name.clone();
        objectives.push(t.objective);
    }
    let (mean, std, min, max, p50, p95) = if objectives.is_empty() {
        (0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    } else {
        let min = objectives.iter().copied().fold(f64::INFINITY, f64::min);
        let max = objectives.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        // A sketch needs a non-empty range; widen degenerate groups by
        // an epsilon so constant objectives still aggregate.
        let hi = if max > min {
            max
        } else {
            min + min.abs().max(1.0) * 1e-9
        };
        let mut sketch = QuantileSketch::new(min, hi, SKETCH_BINS);
        for &o in &objectives {
            sketch.insert(o);
        }
        (
            stats::mean(&objectives),
            stats::variance(&objectives).sqrt(),
            min,
            max,
            sketch.p50(),
            sketch.p95(),
        )
    };
    AnalysisRow {
        variant,
        task_id,
        objective_name,
        n: members.len(),
        successes,
        failures,
        errors,
        mean,
        std,
        min,
        max,
        p50,
        p95,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trial(variant: &str, task: &str, rep: usize, objective: f64) -> TrialResult {
        TrialResult {
            trial_id: format!("t-{task}-{variant}-{rep}"),
            task_id: task.into(),
            variant: variant.into(),
            rep,
            seed: rep as u64,
            outcome: TrialOutcome::Success,
            objective_name: "service_time_s".into(),
            objective,
            metrics: vec![],
        }
    }

    #[test]
    fn groups_by_variant_and_task() {
        let trials = vec![
            trial("a", "t0", 0, 10.0),
            trial("a", "t0", 1, 14.0),
            trial("b", "t0", 0, 20.0),
            trial("a", "t1", 0, 1.0),
        ];
        let table = AnalysisTable::from_trials("x", &trials);
        assert_eq!(table.rows.len(), 3);
        let a0 = table.row("a", "t0").expect("row exists");
        assert_eq!(a0.n, 2);
        assert_eq!(a0.mean, 12.0);
        assert_eq!(a0.min, 10.0);
        assert_eq!(a0.max, 14.0);
        assert!((a0.std - 8.0_f64.sqrt()).abs() < 1e-12);
        assert!(table.row("a", "t2").is_none());
    }

    #[test]
    fn errors_do_not_pollute_the_moments() {
        let mut bad = trial("a", "t0", 2, 9999.0);
        bad.outcome = TrialOutcome::Error("boom".into());
        let trials = vec![trial("a", "t0", 0, 10.0), trial("a", "t0", 1, 10.0), bad];
        let row = AnalysisTable::from_trials("x", &trials).rows[0].clone();
        assert_eq!(row.n, 3);
        assert_eq!(row.errors, 1);
        assert_eq!(row.mean, 10.0);
        assert_eq!(row.max, 10.0, "error objective excluded");
        assert_eq!(row.p50, 10.0, "degenerate range still sketches");
    }

    #[test]
    fn quantiles_bound_the_samples() {
        let objectives = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let trials: Vec<TrialResult> = objectives
            .iter()
            .enumerate()
            .map(|(i, &o)| trial("a", "t0", i, o))
            .collect();
        let row = AnalysisTable::from_trials("x", &trials).rows[0].clone();
        assert!(row.p50 >= row.min && row.p50 <= row.max);
        assert!(row.p95 >= row.p50 && row.p95 <= row.max);
    }

    #[test]
    fn serialises_rows_the_perf_tooling_can_read() {
        let trials = vec![trial("a", "t0", 0, 10.0), trial("a", "t0", 1, 14.0)];
        let doc = AnalysisTable::from_trials("exp", &trials).to_json();
        let rendered = doc.to_pretty();
        let parsed = crate::json::parse(&rendered).expect("valid JSON");
        assert_eq!(parsed.str("experiment"), Some("exp"));
        let rows = parsed.get("analysis").unwrap().as_arr().unwrap();
        assert_eq!(rows[0].num("mean"), Some(12.0));
        assert_eq!(rows[0].str("variant"), Some("a"));
    }
}
