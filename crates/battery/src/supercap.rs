//! The supercapacitor output filter (Fig. 10).
//!
//! The prototype installs a supercapacitor between the LITTLE battery and
//! the phone "to boost and filter the LITTLE output, such that CAPMAN can
//! have a reliable power supply": the LITTLE cell's terminal voltage is
//! spiky under fast switching, and the capacitor rides through the
//! millisecond switch latency and smooths demand spikes seen by the cell.
//!
//! The model is a slew-limited low-pass filter backed by a small energy
//! buffer: the battery-side demand follows the load demand with a first-
//! order lag, the capacitor absorbs the instantaneous difference, and a
//! round-trip efficiency charges for every joule cycled through it.

use serde::{Deserialize, Serialize};

/// A supercapacitor energy buffer between a cell and the load.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Supercap {
    /// Usable energy capacity, joules.
    capacity_j: f64,
    /// Stored energy, joules.
    stored_j: f64,
    /// Round-trip efficiency in `(0, 1]`.
    efficiency: f64,
    /// Smoothing / recharge time constant, seconds.
    tau_s: f64,
    /// The low-pass-filtered demand the battery currently sees, watts.
    smoothed_w: f64,
}

/// Result of filtering one step of load demand through a [`Supercap`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SupercapStep {
    /// Power the battery must supply this step (smoothed demand plus
    /// buffer recharge), watts.
    pub battery_demand_w: f64,
    /// Power shortfall the buffer could not cover, watts (non-zero only
    /// when the capacitor is empty during a spike).
    pub shortfall_w: f64,
    /// Energy lost to the capacitor's round-trip inefficiency, joules.
    pub loss_j: f64,
}

impl Supercap {
    /// A buffer sized for the paper's prototype: rides through tens of
    /// milliseconds of full phone load (~5 W) and smooths second-scale
    /// spikes.
    pub fn prototype() -> Self {
        Supercap::new(2.0, 0.95, 1.5)
    }

    /// Create a full buffer.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_j` or `tau_s` is not positive, or `efficiency`
    /// is outside `(0, 1]`.
    pub fn new(capacity_j: f64, efficiency: f64, tau_s: f64) -> Self {
        assert!(capacity_j > 0.0, "capacity must be positive");
        assert!(
            efficiency > 0.0 && efficiency <= 1.0,
            "efficiency must be in (0, 1]"
        );
        assert!(tau_s > 0.0, "time constant must be positive");
        Supercap {
            capacity_j,
            stored_j: capacity_j,
            efficiency,
            tau_s,
            smoothed_w: 0.0,
        }
    }

    /// Filter one step: the load draws `demand_w` for `dt` seconds.
    ///
    /// Returns the smoothed power to request from the battery. The buffer
    /// absorbs the difference between the smoothed battery supply and the
    /// instantaneous load, refills when the battery over-supplies, and
    /// reports a shortfall when a spike outruns an empty buffer.
    ///
    /// # Panics
    ///
    /// Panics if `demand_w` is negative or `dt` is not positive.
    pub fn filter(&mut self, demand_w: f64, dt: f64) -> SupercapStep {
        assert!(demand_w >= 0.0, "demand must be non-negative");
        assert!(dt > 0.0, "dt must be positive");

        // First-order lag toward the load demand.
        let alpha = 1.0 - (-dt / self.tau_s).exp();
        self.smoothed_w += (demand_w - self.smoothed_w) * alpha;

        // Gentle recharge draw proportional to the buffer deficit.
        let deficit_j = self.capacity_j - self.stored_j;
        let recharge_w = deficit_j / self.tau_s;
        let battery_demand_w = (self.smoothed_w + recharge_w).max(0.0);

        // Energy balance at the buffer node.
        let net_w = battery_demand_w - demand_w;
        let mut loss_j = 0.0;
        let mut shortfall_w = 0.0;
        if net_w >= 0.0 {
            // Battery over-supplies: surplus charges the buffer.
            let in_j = net_w * dt * self.efficiency;
            let stored = in_j.min(self.capacity_j - self.stored_j);
            self.stored_j += stored;
            loss_j += net_w * dt - stored;
        } else {
            // Load exceeds battery supply: buffer covers the gap.
            let want_j = (-net_w) * dt / self.efficiency;
            let got_j = want_j.min(self.stored_j);
            self.stored_j -= got_j;
            loss_j += got_j * (1.0 - self.efficiency);
            let covered_w = got_j * self.efficiency / dt;
            shortfall_w = ((-net_w) - covered_w).max(0.0);
        }

        SupercapStep {
            battery_demand_w,
            shortfall_w,
            loss_j: loss_j.max(0.0),
        }
    }

    /// Stored energy, joules.
    pub fn stored_j(&self) -> f64 {
        self.stored_j
    }

    /// Usable capacity, joules.
    pub fn capacity_j(&self) -> f64 {
        self.capacity_j
    }

    /// Fill level in `[0, 1]`.
    pub fn level(&self) -> f64 {
        (self.stored_j / self.capacity_j).clamp(0.0, 1.0)
    }

    /// The demand level the battery currently sees, watts.
    pub fn smoothed_w(&self) -> f64 {
        self.smoothed_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_full() {
        let c = Supercap::prototype();
        assert!((c.level() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spike_is_smoothed_for_the_battery() {
        let mut c = Supercap::prototype();
        let s = c.filter(8.0, 0.1);
        assert!(
            s.battery_demand_w < 8.0,
            "battery demand should be below the spike: {}",
            s.battery_demand_w
        );
        assert!(c.level() < 1.0, "buffer should have contributed");
        assert_eq!(s.shortfall_w, 0.0);
    }

    #[test]
    fn sustained_demand_converges_to_passthrough() {
        let mut c = Supercap::prototype();
        let mut last = 0.0;
        for _ in 0..500 {
            last = c.filter(3.0, 0.1).battery_demand_w;
        }
        assert!(
            (last - 3.0).abs() < 0.2,
            "steady demand should pass through: {last}"
        );
    }

    #[test]
    fn buffer_recharges_when_idle() {
        let mut c = Supercap::prototype();
        for _ in 0..20 {
            c.filter(8.0, 0.1);
        }
        let drained = c.level();
        assert!(drained < 1.0);
        for _ in 0..200 {
            c.filter(0.0, 0.1);
        }
        assert!(c.level() > drained, "idle steps should recharge the buffer");
    }

    #[test]
    fn empty_buffer_reports_shortfall_on_huge_spike() {
        let mut c = Supercap::new(0.5, 0.95, 10.0);
        let mut saw_shortfall = false;
        for _ in 0..100 {
            if c.filter(50.0, 0.1).shortfall_w > 0.0 {
                saw_shortfall = true;
                break;
            }
        }
        assert!(saw_shortfall);
    }

    #[test]
    fn losses_are_non_negative_and_bounded() {
        let mut c = Supercap::prototype();
        for i in 0..200 {
            let demand = if i % 2 == 0 { 6.0 } else { 0.2 };
            let s = c.filter(demand, 0.5);
            assert!(s.loss_j >= 0.0);
            assert!(s.loss_j <= 6.0 * 0.5, "loss cannot exceed cycled energy");
        }
    }

    #[test]
    fn energy_is_conserved_within_efficiency() {
        // Total battery energy in >= load energy out (difference is loss +
        // buffer state change).
        let mut c = Supercap::prototype();
        let mut battery_j = 0.0;
        let mut load_j = 0.0;
        let mut loss_j = 0.0;
        let start = c.stored_j();
        for i in 0..1000 {
            let demand = if i % 10 < 2 { 7.0 } else { 0.5 };
            let s = c.filter(demand, 0.2);
            battery_j += s.battery_demand_w * 0.2;
            load_j += (demand - s.shortfall_w) * 0.2;
            loss_j += s.loss_j;
        }
        let balance = battery_j + (start - c.stored_j()) - load_j - loss_j;
        assert!(
            balance.abs() < 1.0,
            "energy imbalance too large: {balance} J"
        );
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn rejects_bad_efficiency() {
        let _ = Supercap::new(1.0, 0.0, 1.0);
    }
}
