//! The big.LITTLE battery pack (Fig. 10).
//!
//! A [`BatteryPack`] holds a *big* cell (high energy density) and a
//! *LITTLE* cell (high discharge rate) behind the switch facility. At any
//! instant exactly one cell carries the load; the other rests and
//! recovers. The pack accounts per-cell activation time (needed for
//! Fig. 14's big/LITTLE ratio), switching costs, and the supercapacitor
//! filter in front of the LITTLE cell.
//!
//! A pack can also be built with a single cell ([`BatteryPack::single`])
//! to model the paper's *Practice* baseline — one battery with the same
//! total capacity.

use serde::{Deserialize, Serialize};

use crate::cell::Cell;
use crate::chemistry::{Chemistry, Class};
use crate::supercap::Supercap;
use crate::switch::{SwitchConfig, SwitchFacility};

/// Configuration for building a dual-cell pack.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PackConfig {
    /// Chemistry of the big cell.
    pub big_chemistry: Chemistry,
    /// Chemistry of the LITTLE cell.
    pub little_chemistry: Chemistry,
    /// Capacity of the big cell, ampere-hours.
    pub big_capacity_ah: f64,
    /// Capacity of the LITTLE cell, ampere-hours.
    pub little_capacity_ah: f64,
    /// Switch facility configuration.
    pub switch: SwitchConfig,
    /// Whether the LITTLE cell output is filtered by a supercapacitor.
    pub supercap: bool,
}

impl PackConfig {
    /// The paper's prototype: NCA big + LMO LITTLE, 2500 mAh each,
    /// supercapacitor installed.
    pub fn paper_prototype() -> Self {
        PackConfig {
            big_chemistry: Chemistry::Nca,
            little_chemistry: Chemistry::Lmo,
            big_capacity_ah: 2.5,
            little_capacity_ah: 2.5,
            switch: SwitchConfig::default(),
            supercap: true,
        }
    }
}

/// Telemetry for one simulation step of a [`BatteryPack`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PackStep {
    /// Power delivered to the load, watts.
    pub delivered_w: f64,
    /// Demand the pack failed to serve, watts.
    pub shortfall_w: f64,
    /// Heat dissipated inside the pack (cell + switch + filter), watts.
    pub heat_w: f64,
    /// Terminal voltage of the active cell, volts.
    pub voltage_v: f64,
    /// Current drawn from the active cell, amperes.
    pub current_a: f64,
    /// The cell that carried the load this step.
    pub active: Class,
    /// Whether the active cell browned out (voltage sag / starvation).
    pub brownout: bool,
}

/// A big.LITTLE battery pack behind a switch facility.
///
/// # Examples
///
/// ```
/// use capman_battery::pack::BatteryPack;
/// use capman_battery::chemistry::Class;
///
/// let mut pack = BatteryPack::paper_prototype();
/// pack.select(Class::Little);           // route the surge to LITTLE
/// let step = pack.step(3.0, 1.0, 25.0); // 3 W for one second
/// assert_eq!(step.active, Class::Little);
/// assert!(step.delivered_w > 2.9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BatteryPack {
    big: Cell,
    little: Option<Cell>,
    switch: SwitchFacility,
    supercap: Option<Supercap>,
    time_s: f64,
    active_s: [f64; 2],
    switch_heat_pending_j: f64,
}

impl BatteryPack {
    /// Build a dual-cell pack from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if either capacity is not positive or if the chemistries'
    /// classes are inverted (the big slot must hold a big-class chemistry
    /// and vice versa).
    pub fn dual(config: PackConfig) -> Self {
        assert_eq!(
            config.big_chemistry.class(),
            Class::Big,
            "big slot requires a big-class chemistry"
        );
        assert_eq!(
            config.little_chemistry.class(),
            Class::Little,
            "LITTLE slot requires a LITTLE-class chemistry"
        );
        BatteryPack {
            big: Cell::new(config.big_chemistry, config.big_capacity_ah),
            little: Some(Cell::new(
                config.little_chemistry,
                config.little_capacity_ah,
            )),
            switch: SwitchFacility::new(config.switch),
            supercap: config.supercap.then(Supercap::prototype),
            time_s: 0.0,
            active_s: [0.0; 2],
            switch_heat_pending_j: 0.0,
        }
    }

    /// Build a single-cell pack (the *Practice* baseline): one cell of the
    /// given chemistry and capacity, no switch, no filter.
    pub fn single(chemistry: Chemistry, capacity_ah: f64) -> Self {
        BatteryPack {
            big: Cell::new(chemistry, capacity_ah),
            little: None,
            switch: SwitchFacility::new(SwitchConfig::default()),
            supercap: None,
            time_s: 0.0,
            active_s: [0.0; 2],
            switch_heat_pending_j: 0.0,
        }
    }

    /// The paper's prototype pack.
    pub fn paper_prototype() -> Self {
        BatteryPack::dual(PackConfig::paper_prototype())
    }

    /// Request that `target` carry the load from now on.
    ///
    /// Returns `true` if a switch actually happened. On a single-cell pack
    /// this is always `false`. The flip's energy cost is dissipated as
    /// heat on the next step.
    pub fn select(&mut self, target: Class) -> bool {
        if self.little.is_none() {
            return false;
        }
        match self.switch.switch_to(target, self.time_s) {
            Some(event) => {
                self.switch_heat_pending_j += event.heat_j;
                true
            }
            None => false,
        }
    }

    /// The cell currently selected to carry the load.
    pub fn active(&self) -> Class {
        if self.little.is_none() {
            Class::Big
        } else {
            self.switch.active()
        }
    }

    /// Advance the pack by `dt` seconds under `demand_w` watts at cell
    /// temperature `temp_c`.
    ///
    /// The active cell serves the (possibly supercap-filtered) demand; the
    /// inactive cell rests and recovers.
    ///
    /// # Panics
    ///
    /// Panics if `demand_w` is negative or `dt` is not positive.
    pub fn step(&mut self, demand_w: f64, dt: f64, temp_c: f64) -> PackStep {
        assert!(demand_w >= 0.0, "demand must be non-negative");
        assert!(dt > 0.0, "dt must be positive");
        let active = self.active();
        self.time_s += dt;
        match active {
            Class::Big => self.active_s[0] += dt,
            Class::Little => self.active_s[1] += dt,
        }

        // The supercapacitor only filters the LITTLE cell's output.
        let (cell_demand, mut filter_loss_w, mut filter_shortfall_w) = match &mut self.supercap {
            Some(cap) if active == Class::Little => {
                let f = cap.filter(demand_w, dt);
                (f.battery_demand_w, f.loss_j / dt, f.shortfall_w)
            }
            _ => (demand_w, 0.0, 0.0),
        };

        let (active_step, rest_heat_w) = {
            let (active_cell, resting_cell) = match (active, self.little.as_mut()) {
                (Class::Little, Some(little)) => (little, Some(&mut self.big)),
                (_, little) => (&mut self.big, little),
            };
            let s = active_cell.step(cell_demand, dt, temp_c);
            let rest_heat = match resting_cell {
                Some(cell) => cell.rest(dt, temp_c).heat_w,
                None => 0.0,
            };
            (s, rest_heat)
        };

        // A brownout on the raw cell shows up as a shortfall on the load.
        let served_w = if active == Class::Little && self.supercap.is_some() {
            // The filter decouples the load from the cell: the load got
            // demand minus the filter shortfall (plus the cell's own
            // shortfall propagated through).
            let cell_gap = (cell_demand - active_step.delivered_w).max(0.0);
            filter_shortfall_w += cell_gap;
            filter_loss_w = filter_loss_w.max(0.0);
            (demand_w - filter_shortfall_w).max(0.0)
        } else {
            active_step.delivered_w.min(demand_w)
        };

        let switch_heat_w = self.switch_heat_pending_j / dt;
        self.switch_heat_pending_j = 0.0;

        PackStep {
            delivered_w: served_w,
            shortfall_w: (demand_w - served_w).max(0.0),
            heat_w: active_step.heat_w + rest_heat_w + switch_heat_w + filter_loss_w,
            voltage_v: active_step.voltage_v,
            current_a: active_step.current_a,
            active,
            brownout: active_step.brownout,
        }
    }

    /// The big cell.
    pub fn big(&self) -> &Cell {
        &self.big
    }

    /// The LITTLE cell, if this is a dual pack.
    pub fn little(&self) -> Option<&Cell> {
        self.little.as_ref()
    }

    /// The cell of the given class, if present.
    pub fn cell(&self, class: Class) -> Option<&Cell> {
        match class {
            Class::Big => Some(&self.big),
            Class::Little => self.little.as_ref(),
        }
    }

    /// Mutable access to the cell of the given class (used by the
    /// charger between discharge cycles).
    pub fn cell_mut(&mut self, class: Class) -> Option<&mut Cell> {
        match class {
            Class::Big => Some(&mut self.big),
            Class::Little => self.little.as_mut(),
        }
    }

    /// Combined state of charge, weighted by rated capacity.
    pub fn soc(&self) -> f64 {
        let mut charge = self.big.soc() * self.big.capacity_ah();
        let mut capacity = self.big.capacity_ah();
        if let Some(little) = &self.little {
            charge += little.soc() * little.capacity_ah();
            capacity += little.capacity_ah();
        }
        charge / capacity
    }

    /// Whether every cell in the pack is permanently exhausted.
    pub fn is_depleted(&self) -> bool {
        self.big.is_exhausted() && self.little.as_ref().map(Cell::is_exhausted).unwrap_or(true)
    }

    /// Whether any cell can serve load right now.
    pub fn any_usable(&self) -> bool {
        self.big.is_usable() || self.little.as_ref().map(Cell::is_usable).unwrap_or(false)
    }

    /// Total rated capacity, ampere-hours.
    pub fn capacity_ah(&self) -> f64 {
        self.big.capacity_ah() + self.little.as_ref().map(Cell::capacity_ah).unwrap_or(0.0)
    }

    /// Seconds the big cell has carried the load.
    pub fn big_active_s(&self) -> f64 {
        self.active_s[0]
    }

    /// Seconds the LITTLE cell has carried the load.
    pub fn little_active_s(&self) -> f64 {
        self.active_s[1]
    }

    /// Ratio of big to LITTLE activation time (Fig. 14's x-axis).
    /// Returns `None` until the LITTLE cell has been active at all.
    pub fn big_little_ratio(&self) -> Option<f64> {
        if self.active_s[1] > 0.0 {
            Some(self.active_s[0] / self.active_s[1])
        } else {
            None
        }
    }

    /// Number of battery switches performed.
    pub fn switch_count(&self) -> u64 {
        self.switch.flips()
    }

    /// The switch facility (for signal inspection, Fig. 9).
    pub fn switch_facility(&self) -> &SwitchFacility {
        &self.switch
    }

    /// Elapsed pack time, seconds.
    pub fn time_s(&self) -> f64 {
        self.time_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_pack_starts_on_big() {
        let p = BatteryPack::paper_prototype();
        assert_eq!(p.active(), Class::Big);
        assert!((p.soc() - 1.0).abs() < 1e-9);
        assert_eq!(p.capacity_ah(), 5.0);
    }

    #[test]
    fn select_switches_and_counts() {
        let mut p = BatteryPack::paper_prototype();
        assert!(p.select(Class::Little));
        assert!(!p.select(Class::Little), "already active");
        assert_eq!(p.active(), Class::Little);
        assert_eq!(p.switch_count(), 1);
    }

    #[test]
    fn single_pack_never_switches() {
        let mut p = BatteryPack::single(Chemistry::Nca, 5.0);
        assert!(!p.select(Class::Little));
        assert_eq!(p.active(), Class::Big);
        assert_eq!(p.switch_count(), 0);
    }

    #[test]
    fn step_drains_only_active_cell_charge() {
        let mut p = BatteryPack::paper_prototype();
        for _ in 0..60 {
            p.step(2.0, 1.0, 25.0);
        }
        assert!(p.big().soc() < 1.0);
        // LITTLE only self-discharges (small in one minute).
        assert!(p.little().expect("dual").soc() > 0.999);
    }

    #[test]
    fn activation_time_accounting() {
        let mut p = BatteryPack::paper_prototype();
        for _ in 0..10 {
            p.step(1.0, 1.0, 25.0);
        }
        p.select(Class::Little);
        for _ in 0..5 {
            p.step(1.0, 1.0, 25.0);
        }
        assert!((p.big_active_s() - 10.0).abs() < 1e-9);
        assert!((p.little_active_s() - 5.0).abs() < 1e-9);
        assert!((p.big_little_ratio().expect("ratio") - 2.0).abs() < 1e-9);
    }

    #[test]
    fn switch_heat_lands_on_next_step() {
        let mut p = BatteryPack::dual(PackConfig {
            supercap: false,
            ..PackConfig::paper_prototype()
        });
        let base = p.step(1.0, 1.0, 25.0).heat_w;
        p.select(Class::Little);
        let with_flip = p.step(1.0, 1.0, 25.0).heat_w;
        assert!(
            with_flip > base,
            "flip heat should appear: {with_flip} vs {base}"
        );
    }

    #[test]
    fn resting_cell_recovers_while_other_serves() {
        let mut p = BatteryPack::dual(PackConfig {
            supercap: false,
            ..PackConfig::paper_prototype()
        });
        p.select(Class::Little);
        // Hammer the LITTLE cell.
        for _ in 0..300 {
            p.step(8.0, 1.0, 25.0);
        }
        let little_head = p.little().expect("dual").available_head();
        // Serve from big; LITTLE should recover.
        p.select(Class::Big);
        for _ in 0..300 {
            p.step(1.0, 1.0, 25.0);
        }
        assert!(p.little().expect("dual").available_head() > little_head);
    }

    #[test]
    fn depletion_is_detected() {
        let mut p = BatteryPack::single(Chemistry::Lmo, 0.05);
        for _ in 0..1_000_000 {
            p.step(2.0, 1.0, 25.0);
            if p.is_depleted() {
                break;
            }
        }
        assert!(p.is_depleted());
        assert!(!p.any_usable());
        let s = p.step(2.0, 1.0, 25.0);
        assert_eq!(s.delivered_w, 0.0);
        assert!(s.shortfall_w > 0.0);
    }

    #[test]
    #[should_panic(expected = "big slot")]
    fn rejects_little_chemistry_in_big_slot() {
        let _ = BatteryPack::dual(PackConfig {
            big_chemistry: Chemistry::Lmo,
            ..PackConfig::paper_prototype()
        });
    }
}
