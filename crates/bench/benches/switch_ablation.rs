//! Ablation: switching-cost sensitivity.
//!
//! Each battery flip dissipates energy and heat through the switch
//! facility; the paper's hysteresis/dwell design exists to keep this
//! cheap. The ablation sweeps the per-flip energy (and toggles the
//! supercapacitor filter) on a PCMark cycle under CAPMAN.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use capman_battery::pack::{BatteryPack, PackConfig};
use capman_battery::switch::SwitchConfig;
use capman_core::capman::CapmanPolicy;
use capman_core::config::SimConfig;
use capman_core::metrics::Outcome;
use capman_core::sim::Simulator;
use capman_device::phone::PhoneProfile;
use capman_workload::{generate, WorkloadKind};

const HORIZON_S: f64 = 3000.0;

fn run(flip_energy_j: f64, supercap: bool) -> Outcome {
    let config = SimConfig {
        max_horizon_s: HORIZON_S,
        tec_enabled: true,
        ..SimConfig::paper()
    };
    let pack = BatteryPack::dual(PackConfig {
        switch: SwitchConfig {
            flip_energy_j,
            ..SwitchConfig::default()
        },
        supercap,
        ..PackConfig::paper_prototype()
    });
    let trace = generate(WorkloadKind::Pcmark, HORIZON_S, 42);
    let phone = PhoneProfile::nexus();
    let policy = Box::new(CapmanPolicy::new(phone.compute_speed));
    Simulator::new(phone, trace, pack, policy, config).run()
}

fn bench_switch_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("switch_ablation");
    group.sample_size(10);
    for flip in [0.005, 0.05, 0.5] {
        group.bench_with_input(
            BenchmarkId::new("flip_energy", format!("{flip}J")),
            &flip,
            |b, &flip| b.iter(|| run(flip, true)),
        );
    }
    group.finish();

    println!("\nswitch_ablation (bench scale): flip energy / supercap -> heat & switches");
    for flip in [0.005, 0.05, 0.5] {
        for supercap in [true, false] {
            let o = run(flip, supercap);
            println!(
                "  flip={:<6} supercap={:<5} switches={:<6} heat_j={:>7.0} delivered_j={:>8.0}",
                flip, supercap, o.switches, o.energy_heat_j, o.energy_delivered_j
            );
        }
    }
}

criterion_group!(benches, bench_switch_ablation);
criterion_main!(benches);
