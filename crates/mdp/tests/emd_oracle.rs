//! Brute-force oracle tests for the EMD solver.
//!
//! The successive-shortest-path solver is checked against an exhaustive
//! solution of the underlying transportation LP. Every vertex of the
//! transportation polytope is the unique flow of a spanning forest over
//! at most `m + k - 1` source-sink cells, so on tiny supports (≤ 4
//! points) the optimum can be found by enumerating all cell subsets of
//! that size, solving each forest by leaf elimination, and keeping the
//! cheapest feasible one. No part of the oracle shares code with the SSP
//! solver.

use proptest::prelude::*;

use capman_mdp::emd::{emd, emd_bounds, emd_detailed};

const EPS: f64 = 1e-9;

/// Exact EMD by exhaustive vertex enumeration of the transportation LP.
///
/// Normalises like the production solver and returns 0 for empty mass.
/// Only feasible for tiny supports (`m * k <= 20` or so).
fn oracle_emd(p: &[f64], q: &[f64], dist: impl Fn(usize, usize) -> f64) -> f64 {
    assert_eq!(p.len(), q.len());
    let sum_p: f64 = p.iter().sum();
    let sum_q: f64 = q.iter().sum();
    if sum_p <= 0.0 || sum_q <= 0.0 {
        return 0.0;
    }
    let sources: Vec<usize> = (0..p.len()).filter(|&i| p[i] > 0.0).collect();
    let sinks: Vec<usize> = (0..q.len()).filter(|&j| q[j] > 0.0).collect();
    let m = sources.len();
    let k = sinks.len();
    let supply: Vec<f64> = sources.iter().map(|&i| p[i] / sum_p).collect();
    let demand: Vec<f64> = sinks.iter().map(|&j| q[j] / sum_q).collect();
    let cost: Vec<f64> = (0..m * k)
        .map(|c| dist(sources[c / k], sinks[c % k]))
        .collect();

    let n_cells = m * k;
    assert!(n_cells <= 20, "oracle is exponential in the cell count");
    let basis_size = (m + k - 1).min(n_cells);
    let mut best = f64::INFINITY;
    for mask in 0u32..(1 << n_cells) {
        if mask.count_ones() as usize != basis_size {
            continue;
        }
        if let Some(c) = forest_flow_cost(mask, m, k, &supply, &demand, &cost) {
            best = best.min(c);
        }
    }
    assert!(best.is_finite(), "no feasible basis found");
    best
}

/// Cost of the unique flow supported on the cells of `mask`, or `None`
/// if the cells contain a cycle or the flow is infeasible.
fn forest_flow_cost(
    mask: u32,
    m: usize,
    k: usize,
    supply: &[f64],
    demand: &[f64],
    cost: &[f64],
) -> Option<f64> {
    let mut supply = supply.to_vec();
    let mut demand = demand.to_vec();
    let mut active: Vec<(usize, usize)> = (0..m * k)
        .filter(|&c| mask & (1 << c) != 0)
        .map(|c| (c / k, c % k))
        .collect();
    let mut total = 0.0;
    while !active.is_empty() {
        // A leaf is a row or column incident to exactly one active cell;
        // its flow is forced.
        let leaf = active.iter().position(|&(i, j)| {
            active.iter().filter(|&&(i2, _)| i2 == i).count() == 1
                || active.iter().filter(|&&(_, j2)| j2 == j).count() == 1
        })?;
        let (i, j) = active.swap_remove(leaf);
        let x = if active.iter().all(|&(i2, _)| i2 != i) {
            supply[i]
        } else {
            demand[j]
        };
        if x < -EPS {
            return None;
        }
        supply[i] -= x;
        demand[j] -= x;
        total += x * cost[i * k + j];
    }
    let balanced = supply.iter().chain(demand.iter()).all(|r| r.abs() <= EPS);
    balanced.then_some(total)
}

/// A normalised distribution over `n` points, each weight from `{0} ∪
/// [0.05, 1]` so supports vary but no sliver masses appear.
fn arb_dist(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(prop_oneof![Just(0.0), 0.05f64..1.0], n..=n).prop_filter_map(
        "non-empty mass",
        |v| {
            let total: f64 = v.iter().sum();
            (total > 1e-9).then(|| v.iter().map(|x| x / total).collect())
        },
    )
}

/// An arbitrary non-negative ground distance with zero diagonal
/// (not necessarily symmetric or metric — EMD optimality needs neither).
fn arb_ground(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..1.0, n * n..=n * n).prop_map(move |mut v| {
        for i in 0..n {
            v[i * n + i] = 0.0;
        }
        v
    })
}

fn l1(i: usize, j: usize) -> f64 {
    (i as f64 - j as f64).abs()
}

#[test]
fn oracle_agrees_with_hand_computed_cases() {
    // Sanity-check the oracle itself before trusting it as a referee.
    assert!((oracle_emd(&[1.0, 0.0], &[0.0, 1.0], l1) - 1.0).abs() < EPS);
    assert!((oracle_emd(&[1.0, 0.0], &[0.5, 0.5], l1) - 0.5).abs() < EPS);
    assert!(oracle_emd(&[0.3, 0.7], &[0.3, 0.7], l1) < EPS);
    let skew = |i: usize, j: usize| match (i, j) {
        (0, 2) | (1, 3) => 1.0,
        _ if i == j => 0.0,
        _ => 10.0,
    };
    assert!((oracle_emd(&[0.5, 0.5, 0.0, 0.0], &[0.0, 0.0, 0.5, 0.5], skew) - 1.0).abs() < EPS);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// SSP matches the exhaustive LP optimum on 3-point supports with
    /// arbitrary (possibly asymmetric, non-metric) ground distances.
    #[test]
    fn ssp_matches_lp_oracle_3pt(
        p in arb_dist(3),
        q in arb_dist(3),
        g in arb_ground(3),
    ) {
        let d = |i: usize, j: usize| g[i * 3 + j];
        let exact = oracle_emd(&p, &q, d);
        let got = emd(&p, &q, d);
        prop_assert!((got - exact).abs() < 1e-7, "SSP {got} vs LP {exact}");
    }

    /// Same on full 4-point supports (an 11440-basis enumeration).
    #[test]
    fn ssp_matches_lp_oracle_4pt(
        p in arb_dist(4),
        q in arb_dist(4),
        g in arb_ground(4),
    ) {
        let d = |i: usize, j: usize| g[i * 4 + j];
        let exact = oracle_emd(&p, &q, d);
        let got = emd(&p, &q, d);
        prop_assert!((got - exact).abs() < 1e-7, "SSP {got} vs LP {exact}");
    }

    /// Zero self-distance, symmetry under a symmetric ground, and the
    /// triangle inequality under a metric ground (L1 on indices).
    #[test]
    fn pseudometric_on_metric_grounds(
        p in arb_dist(4),
        q in arb_dist(4),
        r in arb_dist(4),
    ) {
        prop_assert!(emd(&p, &p, l1) < 1e-9, "zero self-distance");
        let pq = emd(&p, &q, l1);
        let qp = emd(&q, &p, l1);
        prop_assert!((pq - qp).abs() < 1e-8, "symmetry: {pq} vs {qp}");
        let qr = emd(&q, &r, l1);
        let pr = emd(&p, &r, l1);
        prop_assert!(pr <= pq + qr + 1e-8, "triangle: {pr} > {pq} + {qr}");
    }

    /// The cheap bounds always bracket the exhaustive LP optimum.
    #[test]
    fn bounds_bracket_lp_oracle(
        p in arb_dist(4),
        q in arb_dist(4),
        g in arb_ground(4),
    ) {
        let d = |i: usize, j: usize| g[i * 4 + j];
        let exact = oracle_emd(&p, &q, d);
        let b = emd_bounds(&p, &q, d);
        prop_assert!(b.lower <= exact + 1e-9,
            "lower bound {} exceeds optimum {exact}", b.lower);
        prop_assert!(exact <= b.upper + 1e-9,
            "optimum {exact} exceeds upper bound {}", b.upper);
    }

    /// `emd_detailed` reports the distance `emd` returns and at least
    /// one augmentation whenever mass must move.
    #[test]
    fn detailed_result_is_consistent(p in arb_dist(4), q in arb_dist(4)) {
        let r = emd_detailed(&p, &q, l1);
        prop_assert_eq!(r.distance, emd(&p, &q, l1));
        let moved: f64 = p.iter().zip(&q).map(|(a, b)| (a - b).abs()).sum();
        if moved > 1e-9 {
            prop_assert!(r.augmentations >= 1);
        }
    }
}
