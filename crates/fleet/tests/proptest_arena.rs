//! Property tests for the arena fleet path: over random cohort shapes
//! (policy mix, workload mix, seeds, shard sizes, window slices), the
//! structure-of-arrays [`ArenaRunner`] must reproduce the roster-based
//! [`FleetRunner`] **bit-identically** — every per-device summary field,
//! every aggregate counter and every quantile-sketch bin — and a
//! time-sliced arena run must match the single-pass arena run the same
//! way. Inline calibration only: pool mode is wall-clock scheduled and
//! carries its own envelope tests.

use capman_core::experiments::PolicyKind;
use capman_fleet::runner::{FleetConfig, FleetRunner};
use capman_fleet::{ArenaConfig, ArenaRunner, Fleet, FleetAggregate, FleetPlan, FleetProfile};
use capman_workload::WorkloadKind;
use proptest::prelude::*;

/// The policies a random cohort may run. CAPMAN is in the pool — its
/// inline calibrator is the stateful extreme — and Oracle exercises the
/// arena's materialize-for-the-clairvoyant path.
const POLICIES: [PolicyKind; 5] = [
    PolicyKind::Capman,
    PolicyKind::Oracle,
    PolicyKind::Dual,
    PolicyKind::Heuristic,
    PolicyKind::Practice,
];

const WORKLOADS: [WorkloadKind; 4] = [
    WorkloadKind::Video,
    WorkloadKind::Pcmark,
    WorkloadKind::Geekbench,
    WorkloadKind::IdleOn,
];

/// One randomly shaped cohort, kept to a short horizon so a proptest
/// case stays in the hundreds of milliseconds.
fn cohort(index: usize, policy: usize, workload: usize, seed: u64) -> FleetProfile {
    let mut p = FleetProfile::capman(
        format!("cohort-{index}"),
        WORKLOADS[workload % WORKLOADS.len()],
        seed,
    );
    p.kind = POLICIES[policy % POLICIES.len()];
    p.config.max_horizon_s = 600.0;
    p.config.tec_enabled = p.kind.has_tec();
    p.calibrator.every_s = 300.0;
    p
}

fn assert_aggregates_match(a: &FleetAggregate, b: &FleetAggregate) {
    assert_eq!(a.devices, b.devices);
    assert_eq!(a.ticks, b.ticks);
    assert_eq!(a.recalibrations, b.recalibrations);
    assert_eq!(a.lifetime_s, b.lifetime_s, "lifetime sketch bins");
    assert_eq!(a.hotspot_c, b.hotspot_c, "hotspot sketch bins");
    assert_eq!(a.staleness_s, b.staleness_s, "staleness sketch bins");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn arena_is_bit_identical_to_the_roster_runner(
        shape in proptest::collection::vec(
            (0usize..POLICIES.len(), 0usize..WORKLOADS.len(), 0u64..1000),
            1..=3,
        ),
        devices_per_profile in 1usize..=3,
        batch in 1usize..=4,
        shard_devices in 1usize..=5,
    ) {
        let build = || {
            shape
                .iter()
                .enumerate()
                .map(|(i, &(p, w, s))| cohort(i, p, w, s))
                .collect::<Vec<_>>()
        };
        let roster = FleetRunner::new(FleetConfig {
            batch,
            ..FleetConfig::default()
        })
        .run(&Fleet::build(build(), devices_per_profile));
        let arena = ArenaRunner::new(ArenaConfig {
            shard_devices,
            collect_summaries: true,
            ..ArenaConfig::default()
        })
        .run(&FleetPlan::new(build(), devices_per_profile));
        prop_assert_eq!(&roster.summaries, &arena.summaries);
        assert_aggregates_match(&roster.aggregate, &arena.aggregate);
    }

    #[test]
    fn time_sliced_arena_matches_single_pass(
        (policy, workload, seed) in (0usize..POLICIES.len(), 0usize..WORKLOADS.len(), 0u64..1000),
        shard_devices in 1usize..=4,
        slice_s in 50.0f64..400.0,
    ) {
        let plan = || FleetPlan::new(vec![cohort(0, policy, workload, seed)], 3);
        let single = ArenaRunner::new(ArenaConfig {
            shard_devices,
            collect_summaries: true,
            ..ArenaConfig::default()
        })
        .run(&plan());
        let sliced = ArenaRunner::new(ArenaConfig {
            shard_devices,
            time_slice_s: slice_s,
            collect_summaries: true,
            ..ArenaConfig::default()
        })
        .run(&plan());
        prop_assert_eq!(&single.summaries, &sliced.summaries);
        assert_aggregates_match(&single.aggregate, &sliced.aggregate);
    }
}
