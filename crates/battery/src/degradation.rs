//! Cycle-aging model — Table I's *lifetime* axis made operational.
//!
//! The paper scores each chemistry's lifetime (LTO five stars, NCA/LMO
//! two) but evaluates single discharge cycles. This module extends the
//! reproduction to multi-cycle service: capacity fades linearly with
//! *equivalent full cycles* (total throughput over rated capacity), at
//! a per-chemistry rate derived from the star ratings, accelerated by
//! heat (Arrhenius doubling per 15 K above 25 degC) and by deep
//! high-rate use (the LITTLE cell in a badly scheduled pack ages
//! fastest — one more argument for balanced depletion).

use serde::{Deserialize, Serialize};

use crate::chemistry::Chemistry;

/// End-of-life convention: the cycle count ratings assume the cell is
/// "worn out" at 80% of its original capacity.
pub const EOL_CAPACITY_FRACTION: f64 = 0.8;

/// Cycle-aging state for one cell.
///
/// # Examples
///
/// ```
/// use capman_battery::degradation::AgingModel;
/// use capman_battery::chemistry::Chemistry;
///
/// let mut aging = AgingModel::new(Chemistry::Lmo, 2.5);
/// aging.record(9000.0, 30.0, 1.0); // one full cycle's throughput
/// assert!(aging.capacity_fraction() < 1.0);
/// assert!(!aging.is_worn_out());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AgingModel {
    chemistry: Chemistry,
    /// Rated capacity, coulombs.
    rated_c: f64,
    /// Cumulative discharge throughput, coulombs.
    throughput_c: f64,
    /// Extra fade accumulated from heat and abuse, as equivalent full
    /// cycles.
    stress_efc: f64,
}

impl AgingModel {
    /// Start tracking a fresh cell.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_ah` is not positive.
    pub fn new(chemistry: Chemistry, capacity_ah: f64) -> Self {
        assert!(capacity_ah > 0.0, "capacity must be positive");
        AgingModel {
            chemistry,
            rated_c: capacity_ah * 3600.0,
            throughput_c: 0.0,
            stress_efc: 0.0,
        }
    }

    /// Rated cycle life to 80% capacity, from the Table I lifetime
    /// stars.
    pub fn rated_cycles(chemistry: Chemistry) -> f64 {
        match chemistry.features().lifetime {
            1 => 300.0,
            2 => 500.0,
            3 => 800.0,
            4 => 1200.0,
            _ => 2500.0, // five stars: LTO territory
        }
    }

    /// Record discharge throughput at an average cell temperature and
    /// C-rate.
    ///
    /// # Panics
    ///
    /// Panics if `charge_c` is negative.
    pub fn record(&mut self, charge_c: f64, temp_c: f64, c_rate: f64) {
        assert!(charge_c >= 0.0, "throughput cannot be negative");
        self.throughput_c += charge_c;
        // Heat stress: Arrhenius doubling per 15 K above the reference.
        let heat = ((temp_c - 25.0) / 15.0).exp2().max(1.0) - 1.0;
        // Rate stress: discharging above 1 C wears proportionally more.
        let rate = (c_rate - 1.0).max(0.0);
        self.stress_efc += charge_c / self.rated_c * (heat + 0.3 * rate);
    }

    /// Equivalent full cycles so far (throughput plus stress).
    pub fn equivalent_full_cycles(&self) -> f64 {
        self.throughput_c / self.rated_c + self.stress_efc
    }

    /// Current capacity as a fraction of rated (1.0 fresh, 0.8 at the
    /// rated cycle life, floored at 0.5).
    pub fn capacity_fraction(&self) -> f64 {
        let per_cycle_fade = (1.0 - EOL_CAPACITY_FRACTION) / Self::rated_cycles(self.chemistry);
        (1.0 - per_cycle_fade * self.equivalent_full_cycles()).max(0.5)
    }

    /// Whether the cell reached its end-of-life capacity.
    pub fn is_worn_out(&self) -> bool {
        self.capacity_fraction() <= EOL_CAPACITY_FRACTION
    }

    /// The chemistry being tracked.
    pub fn chemistry(&self) -> Chemistry {
        self.chemistry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_cell_has_full_capacity() {
        let a = AgingModel::new(Chemistry::Nca, 2.5);
        assert_eq!(a.capacity_fraction(), 1.0);
        assert!(!a.is_worn_out());
        assert_eq!(a.equivalent_full_cycles(), 0.0);
    }

    #[test]
    fn rated_cycles_reach_eol() {
        let mut a = AgingModel::new(Chemistry::Nca, 2.5);
        let rated = AgingModel::rated_cycles(Chemistry::Nca);
        for _ in 0..(rated as usize) {
            a.record(2.5 * 3600.0, 25.0, 0.5);
        }
        assert!(
            (a.capacity_fraction() - EOL_CAPACITY_FRACTION).abs() < 0.01,
            "at rated cycles capacity should be ~80%, got {}",
            a.capacity_fraction()
        );
        assert!(a.is_worn_out());
    }

    #[test]
    fn lto_outlasts_nca() {
        // Five lifetime stars vs two.
        let cycles = |chem| {
            let mut a = AgingModel::new(chem, 2.5);
            let mut n = 0;
            while !a.is_worn_out() && n < 10_000 {
                a.record(2.5 * 3600.0, 25.0, 0.5);
                n += 1;
            }
            n
        };
        assert!(cycles(Chemistry::Lto) > cycles(Chemistry::Nca) * 3);
    }

    #[test]
    fn heat_accelerates_aging() {
        let mut cool = AgingModel::new(Chemistry::Lmo, 2.5);
        let mut hot = AgingModel::new(Chemistry::Lmo, 2.5);
        for _ in 0..100 {
            cool.record(9000.0, 25.0, 0.5);
            hot.record(9000.0, 45.0, 0.5);
        }
        assert!(hot.capacity_fraction() < cool.capacity_fraction());
    }

    #[test]
    fn high_rate_discharge_wears_more() {
        let mut gentle = AgingModel::new(Chemistry::Lmo, 2.5);
        let mut hard = AgingModel::new(Chemistry::Lmo, 2.5);
        for _ in 0..100 {
            gentle.record(9000.0, 25.0, 0.5);
            hard.record(9000.0, 25.0, 5.0);
        }
        assert!(hard.capacity_fraction() < gentle.capacity_fraction());
    }

    #[test]
    fn capacity_floor_holds() {
        let mut a = AgingModel::new(Chemistry::Nca, 2.5);
        for _ in 0..100_000 {
            a.record(9000.0, 60.0, 8.0);
        }
        assert!(a.capacity_fraction() >= 0.5);
    }

    #[test]
    fn lifetime_stars_order_rated_cycles() {
        let mut last = f64::INFINITY;
        for stars in (1..=5).rev() {
            // Find a chemistry with this rating if one exists.
            if let Some(chem) = Chemistry::ALL
                .iter()
                .find(|c| c.features().lifetime == stars)
            {
                let cycles = AgingModel::rated_cycles(*chem);
                assert!(cycles <= last);
                last = cycles;
            }
        }
    }
}
