//! The runtime-calibration scheduler (Section III-C/D).
//!
//! CAPMAN's structural-similarity computation "works as an index for the
//! decision process, that can be executed when the device is not busy at
//! the background". The [`Calibrator`] owns this loop: every calibration
//! interval it rebuilds the MDP from the profiler, prunes the graph to
//! the battery-relevant action nodes, runs Algorithm 1, clusters states
//! by similarity, and solves the MDP; decisions for states never visited
//! reuse the cached decision of their similarity representative.
//!
//! It also accounts the computation overhead that Fig. 16 sweeps over the
//! discount factor `rho`: wall time is measured and normalised by the
//! phone's compute speed.

use std::time::Instant;

use capman_battery::chemistry::Class;
use capman_device::fsm::Action;
use capman_device::states::DeviceState;
use capman_mdp::abstraction::Abstraction;
use capman_mdp::engine::{ExecutionMode, RunStats, SimilarityEngine};
use capman_mdp::graph::MdpGraph;
use capman_mdp::mdp::Mdp;
use capman_mdp::pipeline::{IncrementalStats, LevelStats, QuotientScratch, RecalibrationPipeline};
use capman_mdp::similarity::SimilarityParams;
use capman_mdp::value_iteration::{Precision, Solution};

use crate::profiler::Profiler;

/// Bellman precision target of a calibration solve.
const SOLVE_EPS: f64 = 1e-6;

/// A finished background calibration.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// The exact MDP solution over the profiled state space.
    pub solution: Solution,
    /// Similarity-threshold clustering of device states.
    pub abstraction: Abstraction,
    /// Iterations Algorithm 1 needed.
    pub similarity_iterations: usize,
    /// Action nodes in the pruned (battery-relevant) graph.
    pub graph_action_nodes: usize,
    /// Engine counters/timings of the similarity run.
    pub engine_run: RunStats,
    /// Quotient levels the coarse-to-fine Bellman pipeline solved.
    pub levels: Vec<LevelStats>,
    /// Total Jacobi sweeps across the pipeline (levels + final solve).
    pub bellman_sweeps: usize,
    /// Whether the pipeline was seeded from the previous calibration's
    /// value vector (false for the first calibration).
    pub warm_started: bool,
    /// Dirty `(state, action)` rows the profiler reported since the
    /// cached model snapshot; `None` when the model was rebuilt from
    /// scratch (first calibration, or a different profiler lineage).
    pub dirty_rows: Option<usize>,
    /// Statistics of the restricted Bellman solve, when the incremental
    /// path ran (requires both a cached model and a prior value vector).
    pub incremental: Option<IncrementalStats>,
}

impl Calibration {
    /// The battery preference this calibration's MDP solution holds for
    /// `state` (through its similarity representative), if the solution
    /// has Q-values for both switch actions there.
    ///
    /// Lives on the calibration itself — not the [`Calibrator`] — so a
    /// snapshot published through a lock-free cell (the fleet's async
    /// calibration pool) answers queries without the scheduler that
    /// produced it.
    pub fn q_preference(&self, state: DeviceState) -> Option<Class> {
        let prefer_from = |idx: usize| -> Option<Class> {
            let q = &self.solution.q[idx];
            let q_big = q[Action::SwitchToBig.index()];
            let q_little = q[Action::SwitchToLittle.index()];
            if !q_big.is_finite() && !q_little.is_finite() {
                return None;
            }
            Some(if q_little > q_big {
                Class::Little
            } else {
                Class::Big
            })
        };
        // Prefer the state's own Q-values, then its similarity
        // representative's (the decision-reuse path).
        prefer_from(state.index())
            .or_else(|| prefer_from(self.abstraction.representative(state.index())))
    }

    /// The similarity representative of `state` under this calibration's
    /// clustering.
    pub fn representative(&self, state: DeviceState) -> DeviceState {
        DeviceState::from_index(self.abstraction.representative(state.index()))
    }
}

/// The tunable knobs of a [`Calibrator`], as plain data — the form
/// candidate configurations take when the offline oracle scores them
/// through what-if rollouts ([`crate::oracle::select_calibrator`]) and
/// when a [`crate::scenario::Scenario`] carries a non-default
/// calibration setup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibratorSpec {
    /// MDP discount factor `rho`.
    pub rho: f64,
    /// Similarity-clustering threshold `theta` (distance scale).
    pub theta: f64,
    /// Calibration interval, simulated seconds.
    pub every_s: f64,
}

impl CalibratorSpec {
    /// The paper's defaults (mirrors [`Calibrator::paper`]).
    pub fn paper() -> Self {
        CalibratorSpec {
            rho: 0.05,
            theta: 0.1,
            every_s: 1200.0,
        }
    }

    /// Instantiate the calibrator this spec describes.
    ///
    /// # Panics
    ///
    /// Panics if the spec is invalid (see [`Calibrator::new`]).
    pub fn build(&self) -> Calibrator {
        Calibrator::new(self.rho, self.theta, self.every_s)
    }
}

/// The profiler-derived model of the previous calibration, kept so the
/// next run can patch it forward instead of rebuilding — this is the
/// per-calibrator scratch buffer that makes steady-state recalibration
/// allocation-free (the in-place `patch_rows` path).
#[derive(Debug)]
struct ModelCache {
    /// Lineage id of the profiler the model was built from.
    profiler_id: u64,
    /// Profiler version at the snapshot.
    version: u64,
    mdp: Mdp,
}

/// Schedules and runs background calibrations.
#[derive(Debug)]
pub struct Calibrator {
    /// MDP discount factor `rho`.
    pub rho: f64,
    /// Similarity-clustering threshold `theta` (distance scale).
    pub theta: f64,
    /// Calibration interval, simulated seconds.
    pub every_s: f64,
    /// Observations required before the first calibration.
    pub warmup_observations: u64,
    last_run_s: f64,
    overhead_us: f64,
    recalibrations: u64,
    cached: Option<Calibration>,
    engine: SimilarityEngine,
    /// Bellman kernel width (f64 default; see
    /// [`capman_mdp::value_iteration::Precision`]).
    precision: Precision,
    /// Quotient-CSR arena reused by every calibration's pipeline run.
    scratch: QuotientScratch,
    /// Cached profiler-derived MDP, patched forward between runs.
    model: Option<ModelCache>,
    /// Value vector of the previous calibration — the cross-calibration
    /// warm start. The device state space is fixed, so consecutive
    /// calibrations solve MDPs of the same size with slowly drifting
    /// probabilities: the old fixed point is an excellent seed.
    prior_values: Option<Vec<f64>>,
}

impl Calibrator {
    /// The paper's default: `rho = 0.05` (the relaxed discount of
    /// Section III-D), clustering threshold 0.1, calibration every 20
    /// simulated minutes.
    pub fn paper() -> Self {
        Calibrator::new(0.05, 0.1, 1200.0)
    }

    /// Custom calibrator.
    ///
    /// # Panics
    ///
    /// Panics if `rho` is not in `(0, 1)`, `theta` not in `[0, 1]`, or
    /// `every_s` not positive.
    pub fn new(rho: f64, theta: f64, every_s: f64) -> Self {
        assert!(rho > 0.0 && rho < 1.0, "rho must be in (0, 1)");
        assert!((0.0..=1.0).contains(&theta), "theta must be in [0, 1]");
        assert!(every_s > 0.0, "interval must be positive");
        Calibrator {
            rho,
            theta,
            every_s,
            warmup_observations: 60,
            last_run_s: f64::NEG_INFINITY,
            overhead_us: 0.0,
            recalibrations: 0,
            cached: None,
            engine: SimilarityEngine::parallel(),
            precision: Precision::F64,
            scratch: QuotientScratch::new(),
            model: None,
            prior_values: None,
        }
    }

    /// Replace the similarity engine (e.g. [`SimilarityEngine::serial`]
    /// to reproduce the unoptimised seed path in comparisons).
    pub fn with_engine(mut self, engine: SimilarityEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Switch the Bellman kernel precision (opt-in
    /// [`Precision::F32`] for devices where ~1e-3 value precision
    /// suffices; the extracted policy is computed in f64 either way).
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// The similarity engine and its lifetime statistics.
    pub fn engine(&self) -> &SimilarityEngine {
        &self.engine
    }

    /// The quotient ladder of one calibration, coarse → fine: widened
    /// multiples of `theta` down to `theta` itself (the clustering the
    /// scheduler reuses decisions from). Degenerate rungs — zero, or
    /// duplicates after clamping to 1 — are dropped; the pipeline also
    /// skips any rung whose clustering achieves no compression.
    fn theta_ladder(&self) -> Vec<f64> {
        let mut ladder: Vec<f64> = [4.0, 2.0, 1.0]
            .iter()
            .map(|m| (m * self.theta).min(1.0))
            .filter(|t| *t > 0.0)
            .collect();
        ladder.dedup();
        ladder
    }

    /// Run a calibration now, unconditionally, and cache the result.
    ///
    /// Returns the wall-clock overhead in microseconds *before* compute
    /// speed normalisation.
    pub fn recalibrate(&mut self, now_s: f64, profiler: &Profiler, compute_speed: f64) -> f64 {
        let _span = capman_obs::span("calibrate", profiler.observations());
        let t0 = Instant::now();
        // Patch the cached model forward when the profiler continues the
        // lineage it was built from; otherwise rebuild from scratch. The
        // patched model is bitwise identical to `to_mdp()`, so everything
        // downstream is oblivious to which path ran.
        let (mdp, dirty) = match self.model.take() {
            Some(m) if m.profiler_id == profiler.id() && m.version <= profiler.version() => {
                let dirty = profiler.changes_since(m.version);
                let mut mdp = m.mdp;
                if !dirty.is_empty() {
                    profiler.to_mdp_incremental(&mut mdp, &dirty);
                    self.engine.invalidate_states(dirty.states());
                }
                (mdp, Some(dirty))
            }
            _ => (profiler.to_mdp(), None),
        };
        // CAPMAN's pruning: keep the action nodes that decide batteries —
        // explicit switch actions plus any action observed to connect
        // states with different battery selections.
        let graph = MdpGraph::filtered(&mdp, |s, a| {
            let action = Action::ALL[a];
            if action.is_battery_switch() {
                return true;
            }
            let from = DeviceState::from_index(s);
            mdp.outcomes(s, a)
                .iter()
                .any(|o| DeviceState::from_index(o.next).battery != from.battery)
        });
        let mut params = SimilarityParams::paper(self.rho.max(1e-3));
        params.tolerance = 1e-3;
        params.max_iterations = 200;
        let sim = self.engine.compute(&graph, &params);
        let abstraction = Abstraction::from_similarity(&sim.sigma_s, self.theta);
        // Coarse-to-fine Bellman pipeline over the similarity ladder,
        // warm-started from the previous calibration's fixed point.
        let pipeline =
            RecalibrationPipeline::new(self.rho, SOLVE_EPS).with_precision(self.precision);
        let ladder = self.theta_ladder();
        // With both a patched model and a prior fixed point, restrict the
        // Bellman sweeps to what the dirty rows can influence.
        let (out, incremental) = match (&dirty, self.prior_values.as_deref()) {
            (Some(d), Some(prior)) => {
                // `solve_incremental` wants the row *owners* — the states
                // whose Bellman operator changed. Dirty rows are sorted by
                // (state, action), so owners dedup in place.
                let mut owners: Vec<usize> = d.rows().iter().map(|&(s, _)| s).collect();
                owners.dedup();
                let inc = pipeline.solve_incremental(
                    &mdp,
                    &sim.sigma_s,
                    &ladder,
                    prior,
                    &owners,
                    ExecutionMode::Parallel,
                    &mut self.scratch,
                );
                (inc.outcome, Some(inc.stats))
            }
            _ => (
                pipeline.solve_with_scratch(
                    &mdp,
                    &sim.sigma_s,
                    &ladder,
                    self.prior_values.as_deref(),
                    ExecutionMode::Parallel,
                    &mut self.scratch,
                ),
                None,
            ),
        };
        let dirty_rows = dirty.as_ref().map(|d| d.rows().len());
        self.model = Some(ModelCache {
            profiler_id: profiler.id(),
            version: profiler.version(),
            mdp,
        });
        self.prior_values = Some(out.solution.values.clone());
        self.cached = Some(Calibration {
            solution: out.solution,
            abstraction,
            similarity_iterations: sim.iterations,
            graph_action_nodes: graph.n_action_nodes(),
            engine_run: self.engine.stats().last_run.clone(),
            bellman_sweeps: out.levels.iter().map(|l| l.sweeps).sum::<usize>() + out.final_sweeps,
            levels: out.levels,
            warm_started: out.warm_started,
            dirty_rows,
            incremental,
        });
        let raw_us = t0.elapsed().as_secs_f64() * 1e6;
        if capman_obs::enabled() {
            let cal = self.cached.as_ref().expect("cached just above");
            capman_obs::counter!("calibrations_total", "Calibration solves executed").inc();
            if cal.warm_started {
                capman_obs::counter!(
                    "calibration_warm_starts_total",
                    "Calibrations seeded from the previous value vector"
                )
                .inc();
            }
            if let Some(inc) = &cal.incremental {
                capman_obs::counter!(
                    "calibration_incremental_total",
                    "Calibrations that patched the cached model forward"
                )
                .inc();
                if inc.full_fallback {
                    capman_obs::counter!(
                        "calibration_incremental_fallback_total",
                        "Incremental calibrations that fell back to the full solve"
                    )
                    .inc();
                }
            }
            capman_obs::histogram!(
                "calibration_solve_us",
                "Wall time of one calibration solve, microseconds",
                &[100.0, 250.0, 500.0, 1e3, 2.5e3, 5e3, 1e4, 2.5e4, 5e4, 1e5, 2.5e5, 1e6]
            )
            .observe(raw_us);
        }
        self.overhead_us += raw_us / compute_speed.max(1e-6);
        self.recalibrations += 1;
        self.last_run_s = now_s;
        raw_us
    }

    /// Run a calibration if the interval elapsed and enough observations
    /// accumulated. Returns whether one ran.
    pub fn maybe_recalibrate(
        &mut self,
        now_s: f64,
        profiler: &Profiler,
        compute_speed: f64,
    ) -> bool {
        if profiler.observations() < self.warmup_observations {
            return false;
        }
        if now_s - self.last_run_s < self.every_s {
            return false;
        }
        self.recalibrate(now_s, profiler, compute_speed);
        true
    }

    /// The battery preference the cached MDP solution holds for `state`
    /// (see [`Calibration::q_preference`]).
    pub fn q_preference(&self, state: DeviceState) -> Option<Class> {
        self.cached.as_ref()?.q_preference(state)
    }

    /// The similarity representative of a state, if calibrated.
    pub fn representative(&self, state: DeviceState) -> Option<DeviceState> {
        self.cached.as_ref().map(|c| c.representative(state))
    }

    /// The latest calibration, if any.
    pub fn calibration(&self) -> Option<&Calibration> {
        self.cached.as_ref()
    }

    /// Accumulated normalised overhead, microseconds.
    pub fn overhead_us(&self) -> f64 {
        self.overhead_us
    }

    /// Calibrations performed.
    pub fn recalibrations(&self) -> u64 {
        self.recalibrations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capman_battery::chemistry::Class;

    fn seeded_profiler() -> Profiler {
        let mut p = Profiler::new();
        let asleep = DeviceState::asleep();
        let awake = DeviceState::awake();
        let awake_little = awake.with_battery(Class::Little);
        for _ in 0..40 {
            // Switching to LITTLE while awake is efficient...
            p.observe(awake, Action::SwitchToLittle, awake_little, 0.95, 2.5);
            // ...switching back to big while awake is lossy.
            p.observe(awake_little, Action::SwitchToBig, awake, 0.4, 2.5);
            p.observe(awake, Action::ScreenOff, asleep, 0.9, 0.3);
            p.observe(asleep, Action::ScreenOn, awake, 0.8, 2.0);
        }
        p
    }

    #[test]
    fn warmup_gate_blocks_early_calibration() {
        let mut c = Calibrator::paper();
        let p = Profiler::new();
        assert!(!c.maybe_recalibrate(10_000.0, &p, 1.0));
        assert_eq!(c.recalibrations(), 0);
    }

    #[test]
    fn interval_gate_limits_frequency() {
        let mut c = Calibrator::paper();
        let p = seeded_profiler();
        assert!(c.maybe_recalibrate(0.0, &p, 1.0));
        assert!(!c.maybe_recalibrate(10.0, &p, 1.0));
        assert!(c.maybe_recalibrate(1300.0, &p, 1.0));
        assert_eq!(c.recalibrations(), 2);
    }

    #[test]
    fn calibration_produces_solution_and_abstraction() {
        let mut c = Calibrator::paper();
        let p = seeded_profiler();
        c.recalibrate(0.0, &p, 1.0);
        let cal = c.calibration().expect("calibrated");
        assert!(cal.graph_action_nodes >= 2);
        assert!(cal.similarity_iterations >= 1);
        assert!(c.overhead_us() > 0.0);
    }

    #[test]
    fn calibration_records_engine_run_stats() {
        let mut c = Calibrator::paper();
        let p = seeded_profiler();
        c.recalibrate(0.0, &p, 1.0);
        let cal = c.calibration().expect("calibrated");
        assert_eq!(cal.engine_run.sweeps, cal.similarity_iterations);
        assert!(cal.engine_run.wall_us > 0.0);
        assert_eq!(cal.engine_run.sweep_us.len(), cal.engine_run.sweeps);
        assert_eq!(c.engine().stats().runs, 1);
    }

    #[test]
    fn serial_and_parallel_engines_calibrate_identically() {
        let p = seeded_profiler();
        let mut fast = Calibrator::paper();
        let mut slow = Calibrator::paper().with_engine(SimilarityEngine::serial());
        fast.recalibrate(0.0, &p, 1.0);
        slow.recalibrate(0.0, &p, 1.0);
        for state in [
            DeviceState::asleep(),
            DeviceState::awake(),
            DeviceState::awake().with_battery(Class::Little),
        ] {
            assert_eq!(fast.representative(state), slow.representative(state));
            assert_eq!(fast.q_preference(state), slow.q_preference(state));
        }
    }

    #[test]
    fn q_preference_prefers_the_efficient_switch() {
        let mut c = Calibrator::paper();
        let p = seeded_profiler();
        c.recalibrate(0.0, &p, 1.0);
        // From the awake/big state, switching to LITTLE earned much more
        // reward than the reverse direction did.
        let pref = c.q_preference(DeviceState::awake());
        assert_eq!(pref, Some(Class::Little));
    }

    #[test]
    fn slower_phone_accumulates_more_overhead() {
        let p = seeded_profiler();
        let mut fast = Calibrator::paper();
        let mut slow = Calibrator::paper();
        // Use identical raw work; normalisation differs.
        let raw_fast = fast.recalibrate(0.0, &p, 2.0);
        let raw_slow = slow.recalibrate(0.0, &p, 0.5);
        // Raw timings fluctuate; the normalised ratio must reflect the
        // 4x compute-speed gap up to that fluctuation.
        let ratio = (slow.overhead_us() / raw_slow) / (fast.overhead_us() / raw_fast);
        assert!((ratio - 4.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "rho")]
    fn rejects_bad_rho() {
        let _ = Calibrator::new(1.0, 0.1, 100.0);
    }

    #[test]
    fn first_calibration_is_cold_later_ones_warm_start() {
        let mut c = Calibrator::paper();
        let p = seeded_profiler();
        c.recalibrate(0.0, &p, 1.0);
        let first = c.calibration().expect("calibrated").clone();
        assert!(!first.warm_started, "nothing to warm-start from yet");
        assert!(first.bellman_sweeps > 0);
        c.recalibrate(1300.0, &p, 1.0);
        let second = c.calibration().expect("calibrated");
        assert!(second.warm_started, "second run seeds from the first");
        // Same profile, same MDP: the warm solve re-confirms the fixed
        // point in (almost) no sweeps and finds the same policy.
        assert!(second.bellman_sweeps <= first.bellman_sweeps);
        assert_eq!(second.solution.policy, first.solution.policy);
    }

    #[test]
    fn pipeline_calibration_matches_the_direct_cold_solve() {
        use capman_mdp::value_iteration::solve;
        let p = seeded_profiler();
        let mut c = Calibrator::paper();
        c.recalibrate(0.0, &p, 1.0);
        let cal = c.calibration().expect("calibrated");
        let cold = solve(&p.to_mdp(), c.rho, 1e-6);
        assert_eq!(cal.solution.policy, cold.policy);
        let tol = 2.0 * 1e-6 / (1.0 - c.rho);
        for (a, b) in cal.solution.values.iter().zip(&cold.values) {
            assert!((a - b).abs() < tol, "{a} vs {b}");
        }
    }

    #[test]
    fn f32_precision_calibration_reaches_the_same_decisions() {
        let p = seeded_profiler();
        let mut exact = Calibrator::paper();
        let mut fast = Calibrator::paper().with_precision(Precision::F32);
        exact.recalibrate(0.0, &p, 1.0);
        fast.recalibrate(0.0, &p, 1.0);
        for state in [
            DeviceState::asleep(),
            DeviceState::awake(),
            DeviceState::awake().with_battery(Class::Little),
        ] {
            assert_eq!(exact.q_preference(state), fast.q_preference(state));
        }
    }

    #[test]
    fn spec_round_trips_through_build() {
        let spec = CalibratorSpec {
            rho: 0.2,
            theta: 0.3,
            every_s: 600.0,
        };
        let c = spec.build();
        assert_eq!(c.rho, 0.2);
        assert_eq!(c.theta, 0.3);
        assert_eq!(c.every_s, 600.0);
        let paper = CalibratorSpec::paper().build();
        assert_eq!(paper.rho, Calibrator::paper().rho);
    }

    #[test]
    #[should_panic(expected = "rho")]
    fn spec_build_validates_like_the_constructor() {
        let _ = CalibratorSpec {
            rho: 0.0,
            theta: 0.1,
            every_s: 100.0,
        }
        .build();
    }

    #[test]
    fn drifted_recalibration_takes_the_incremental_path() {
        let mut p = seeded_profiler();
        let mut c = Calibrator::paper();
        c.recalibrate(0.0, &p, 1.0);
        let first = c.calibration().expect("calibrated");
        assert!(first.dirty_rows.is_none(), "first run rebuilds cold");
        assert!(first.incremental.is_none());

        // Drift a couple of rows, then recalibrate the same lineage.
        let awake = DeviceState::awake();
        let asleep = DeviceState::asleep();
        p.observe(awake, Action::ScreenOff, asleep, 0.95, 0.3);
        p.observe(asleep, Action::ScreenOn, awake, 0.7, 2.1);
        c.recalibrate(1300.0, &p, 1.0);
        let cal = c.calibration().expect("calibrated");
        assert_eq!(cal.dirty_rows, Some(2));
        let inc = cal.incremental.expect("incremental path ran");
        assert_eq!(inc.dirty_states, 2);
        assert!(cal.warm_started);

        // A fresh calibrator rebuilding everything from the drifted
        // profile reaches the same decisions.
        let mut cold = Calibrator::paper();
        cold.recalibrate(0.0, &p, 1.0);
        for state in [asleep, awake, awake.with_battery(Class::Little)] {
            assert_eq!(c.q_preference(state), cold.q_preference(state));
            assert_eq!(c.representative(state), cold.representative(state));
        }
    }

    #[test]
    fn unchanged_profile_recalibrates_for_free() {
        let p = seeded_profiler();
        let mut c = Calibrator::paper();
        c.recalibrate(0.0, &p, 1.0);
        let first_policy = c.calibration().expect("calibrated").solution.policy.clone();
        c.recalibrate(1300.0, &p, 1.0);
        let cal = c.calibration().expect("calibrated");
        assert_eq!(cal.dirty_rows, Some(0), "no drift, no dirty rows");
        assert_eq!(cal.bellman_sweeps, 0, "nothing to sweep");
        assert_eq!(cal.solution.policy, first_policy);
    }

    #[test]
    fn a_different_profiler_lineage_forces_a_full_rebuild() {
        let mut c = Calibrator::paper();
        c.recalibrate(0.0, &seeded_profiler(), 1.0);
        // Bitwise-identical statistics, but a fresh lineage id: the
        // cached model must not be trusted.
        c.recalibrate(1300.0, &seeded_profiler(), 1.0);
        let cal = c.calibration().expect("calibrated");
        assert!(cal.dirty_rows.is_none());
        assert!(cal.incremental.is_none());
        assert!(cal.warm_started, "prior values still seed the solve");
    }

    #[test]
    fn incremental_calibration_matches_a_cold_solve_after_heavy_drift() {
        use capman_mdp::value_iteration::solve;
        let mut p = seeded_profiler();
        let mut c = Calibrator::paper();
        c.recalibrate(0.0, &p, 1.0);
        // Heavy drift: every profiled row changes, which lands the
        // pipeline in its full-solve fallback — still bitwise safe.
        let awake = DeviceState::awake();
        let asleep = DeviceState::asleep();
        let little = awake.with_battery(Class::Little);
        for _ in 0..25 {
            p.observe(awake, Action::SwitchToLittle, little, 0.2, 2.5);
            p.observe(little, Action::SwitchToBig, awake, 0.9, 2.5);
            p.observe(awake, Action::ScreenOff, asleep, 0.5, 0.3);
            p.observe(asleep, Action::ScreenOn, awake, 0.5, 2.0);
        }
        c.recalibrate(1300.0, &p, 1.0);
        let cal = c.calibration().expect("calibrated");
        assert!(cal.incremental.is_some());
        let cold = solve(&p.to_mdp(), c.rho, 1e-6);
        assert_eq!(cal.solution.policy, cold.policy);
        let tol = 2.0 * 1e-6 / (1.0 - c.rho);
        for (a, b) in cal.solution.values.iter().zip(&cold.values) {
            assert!((a - b).abs() < tol, "{a} vs {b}");
        }
    }
}
