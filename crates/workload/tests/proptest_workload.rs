//! Property-based invariants for workload generation.

use proptest::prelude::*;

use capman_workload::{generate, WorkloadKind};

fn arb_kind() -> impl Strategy<Value = WorkloadKind> {
    prop_oneof![
        Just(WorkloadKind::Geekbench),
        Just(WorkloadKind::Pcmark),
        Just(WorkloadKind::Video),
        (0u8..=100).prop_map(|eta| WorkloadKind::EtaStatic { eta }),
        Just(WorkloadKind::IdleOn),
        (2u32..120).prop_map(|period_s| WorkloadKind::Toggle { period_s }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Traces are contiguous (no gaps, no overlaps) and cover the
    /// requested horizon.
    #[test]
    fn traces_are_contiguous(kind in arb_kind(), horizon in 100.0f64..5000.0, seed: u64) {
        let t = generate(kind, horizon, seed);
        prop_assert!(t.horizon_s() >= horizon);
        let segs = t.segments();
        prop_assert!((segs[0].start_s).abs() < 1e-9);
        for w in segs.windows(2) {
            prop_assert!((w[0].end_s() - w[1].start_s).abs() < 1e-6);
            prop_assert!(w[0].duration_s > 0.0);
        }
    }

    /// Generation is a pure function of (kind, horizon, seed).
    #[test]
    fn generation_is_deterministic(kind in arb_kind(), seed: u64) {
        let a = generate(kind, 800.0, seed);
        let b = generate(kind, 800.0, seed);
        prop_assert_eq!(a, b);
    }

    /// Demands stay within physical ranges everywhere.
    #[test]
    fn demands_are_physical(kind in arb_kind(), seed: u64) {
        let t = generate(kind, 1000.0, seed);
        for seg in t.segments() {
            prop_assert!((0.0..=100.0).contains(&seg.demand.cpu_util));
            prop_assert!((0.0..=255.0).contains(&seg.demand.brightness));
            prop_assert!(seg.demand.packet_rate >= 0.0);
        }
    }

    /// Segment lookup agrees with the segment list at arbitrary times.
    #[test]
    fn lookup_is_consistent(kind in arb_kind(), seed: u64, frac in 0.0f64..1.0) {
        let t = generate(kind, 600.0, seed);
        let time = t.horizon_s() * frac * 0.999;
        let seg = t.at(time);
        prop_assert!(seg.start_s <= time + 1e-9);
        prop_assert!(time < seg.end_s() + 1e-9);
    }

    /// Higher eta never reduces the surge count by much (monotone trend
    /// over the extremes).
    #[test]
    fn eta_extremes_order_surges(seed: u64) {
        let lo = generate(WorkloadKind::EtaStatic { eta: 0 }, 6000.0, seed);
        let hi = generate(WorkloadKind::EtaStatic { eta: 100 }, 6000.0, seed);
        prop_assert!(hi.surge_count(25.0) >= lo.surge_count(25.0));
    }
}
