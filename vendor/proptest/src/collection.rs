//! Collection strategies (`prop::collection::vec`).

use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive size window for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.gen_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// `prop::collection::vec(element, size)`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::new_case_rng;

    #[test]
    fn vec_lengths_stay_in_window() {
        let mut rng = new_case_rng(0);
        let s = vec(0.0f64..1.0, 2..5);
        for _ in 0..200 {
            let v = s.new_value(&mut rng);
            assert!((2..=4).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn fixed_size_via_inclusive_range() {
        let mut rng = new_case_rng(1);
        let s = vec(0u8..3, 4..=4);
        assert_eq!(s.new_value(&mut rng).len(), 4);
    }
}
