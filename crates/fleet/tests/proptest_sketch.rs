//! Property tests for [`QuantileSketch`] merge — the operation the
//! sharded fleet runner leans on when it folds per-shard telemetry into
//! one aggregate. Two laws:
//!
//! 1. **Order-insensitivity**: merging any partition of a sample set,
//!    in any order, reads identically to a single sketch that saw every
//!    sample directly.
//! 2. **Boundedness**: a merged quantile stays within one bin width of
//!    the exact pooled-sample order statistic, and inside the observed
//!    `[min, max]`.

use capman_fleet::QuantileSketch;
use proptest::prelude::*;

const LO: f64 = 0.0;
const HI: f64 = 100.0;
const BINS: usize = 32;
const BIN_WIDTH: f64 = (HI - LO) / BINS as f64;
const SHARDS: usize = 4;

/// The exact order statistic under the sketch's own rank rule
/// (`ceil(q * n)`, clamped to at least 1).
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize)
        .max(1)
        .min(sorted.len());
    sorted[rank - 1]
}

/// Shard the samples as tagged and fold the shard sketches in the
/// given order.
fn merge_shards(data: &[(f64, usize)], order: impl Iterator<Item = usize>) -> QuantileSketch {
    let mut shards: Vec<QuantileSketch> = (0..SHARDS)
        .map(|_| QuantileSketch::new(LO, HI, BINS))
        .collect();
    for &(x, shard) in data {
        shards[shard % SHARDS].insert(x);
    }
    let mut merged = QuantileSketch::new(LO, HI, BINS);
    for i in order {
        merged.merge(&shards[i]);
    }
    merged
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_is_order_insensitive(
        data in proptest::collection::vec((LO..HI, 0usize..SHARDS), 1..200),
    ) {
        let mut whole = QuantileSketch::new(LO, HI, BINS);
        for &(x, _) in &data {
            whole.insert(x);
        }
        let forward = merge_shards(&data, 0..SHARDS);
        let reverse = merge_shards(&data, (0..SHARDS).rev());

        prop_assert_eq!(forward.count(), whole.count());
        prop_assert_eq!(reverse.count(), whole.count());
        prop_assert_eq!(forward.min(), whole.min());
        prop_assert_eq!(forward.max(), whole.max());
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
            prop_assert_eq!(forward.quantile(q), whole.quantile(q), "q={}", q);
            prop_assert_eq!(reverse.quantile(q), whole.quantile(q), "q={}", q);
        }
    }

    #[test]
    fn merged_quantiles_bound_the_pooled_order_statistic(
        data in proptest::collection::vec((LO..HI, 0usize..SHARDS), 1..200),
        q in 0.001f64..=1.0,
    ) {
        let merged = merge_shards(&data, 0..SHARDS);
        let mut pooled: Vec<f64> = data.iter().map(|&(x, _)| x).collect();
        pooled.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let exact = exact_quantile(&pooled, q);
        let got = merged.quantile(q);

        prop_assert!(got >= merged.min() && got <= merged.max(),
            "quantile {} outside [{}, {}]", got, merged.min(), merged.max());
        prop_assert!((got - exact).abs() <= BIN_WIDTH + 1e-9,
            "quantile {} more than a bin width from the exact {}", got, exact);
    }
}
