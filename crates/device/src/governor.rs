//! A DVFS governor for the CPU frequency ladder.
//!
//! The paper lists DVFS among the traditional techniques whose
//! performance/power trade-off motivates CAPMAN (Section I) and sweeps
//! phones "with CPU frequency ranging from 1040 to 2000". This module
//! provides the standard utilisation-driven ondemand-style governor so
//! experiments can couple frequency selection with battery scheduling:
//! ramp straight to the top level when utilisation crosses the up
//! threshold, step down gradually when it stays below the down
//! threshold.

use serde::{Deserialize, Serialize};

/// An ondemand-style frequency governor over `n_freqs` levels.
///
/// # Examples
///
/// ```
/// use capman_device::governor::DvfsGovernor;
///
/// let mut governor = DvfsGovernor::ondemand(8);
/// assert_eq!(governor.step(95.0), 7); // burst -> top level
/// assert_eq!(governor.step(10.0), 6); // idle -> step down
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DvfsGovernor {
    n_freqs: usize,
    /// Jump to the top level above this utilisation, percent.
    up_threshold: f64,
    /// Step one level down below this utilisation, percent.
    down_threshold: f64,
    current: usize,
}

impl DvfsGovernor {
    /// The Linux-ondemand-like defaults: up at 80%, down below 30%.
    ///
    /// # Panics
    ///
    /// Panics if `n_freqs` is zero.
    pub fn ondemand(n_freqs: usize) -> Self {
        DvfsGovernor::new(n_freqs, 80.0, 30.0)
    }

    /// A custom governor.
    ///
    /// # Panics
    ///
    /// Panics if `n_freqs` is zero or the thresholds are not ordered
    /// within `(0, 100)`.
    pub fn new(n_freqs: usize, up_threshold: f64, down_threshold: f64) -> Self {
        assert!(n_freqs > 0, "need at least one frequency level");
        assert!(
            0.0 < down_threshold && down_threshold < up_threshold && up_threshold < 100.0,
            "thresholds must satisfy 0 < down < up < 100"
        );
        DvfsGovernor {
            n_freqs,
            up_threshold,
            down_threshold,
            current: 0,
        }
    }

    /// Update with the measured utilisation and return the chosen
    /// frequency index.
    ///
    /// # Panics
    ///
    /// Panics if `util` is outside `[0, 100]`.
    pub fn step(&mut self, util: f64) -> usize {
        assert!((0.0..=100.0).contains(&util), "utilisation out of range");
        if util > self.up_threshold {
            self.current = self.n_freqs - 1;
        } else if util < self.down_threshold && self.current > 0 {
            self.current -= 1;
        }
        self.current
    }

    /// The current frequency index.
    pub fn current(&self) -> usize {
        self.current
    }

    /// Number of levels.
    pub fn n_freqs(&self) -> usize {
        self.n_freqs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_utilisation_jumps_to_top() {
        let mut g = DvfsGovernor::ondemand(8);
        assert_eq!(g.step(95.0), 7);
    }

    #[test]
    fn low_utilisation_steps_down_gradually() {
        let mut g = DvfsGovernor::ondemand(8);
        g.step(95.0);
        assert_eq!(g.step(10.0), 6);
        assert_eq!(g.step(10.0), 5);
        // Never below zero.
        for _ in 0..20 {
            g.step(0.0);
        }
        assert_eq!(g.current(), 0);
    }

    #[test]
    fn midrange_utilisation_holds_the_level() {
        let mut g = DvfsGovernor::ondemand(4);
        g.step(95.0);
        assert_eq!(g.step(50.0), 3);
        assert_eq!(g.step(50.0), 3);
    }

    #[test]
    fn single_level_governor_is_trivial() {
        let mut g = DvfsGovernor::ondemand(1);
        assert_eq!(g.step(100.0), 0);
        assert_eq!(g.step(0.0), 0);
    }

    #[test]
    #[should_panic(expected = "thresholds")]
    fn rejects_inverted_thresholds() {
        let _ = DvfsGovernor::new(4, 30.0, 80.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_utilisation() {
        DvfsGovernor::ondemand(4).step(120.0);
    }
}
