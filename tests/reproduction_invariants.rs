//! Cross-crate checks of the paper's stated facts, through the facade.

use capman::battery::chemistry::{Chemistry, Class};
use capman::battery::pack::BatteryPack;
use capman::device::constants;
use capman::device::power::{Demand, PowerModel};
use capman::device::states::DeviceState;
use capman::thermal::tec::Tec;
use capman::thermal::HOT_SPOT_THRESHOLD_C;

#[test]
fn table1_result_column() {
    let expected = [
        (Chemistry::Lco, Class::Big),
        (Chemistry::Nca, Class::Big),
        (Chemistry::Lmo, Class::Little),
        (Chemistry::Nmc, Class::Little),
        (Chemistry::Lfp, Class::Little),
        (Chemistry::Lto, Class::Little),
    ];
    for (chem, class) in expected {
        assert_eq!(chem.class(), class, "{chem}");
    }
}

#[test]
fn prototype_pack_matches_the_paper() {
    // "one LMO and NCA each", 2500 mAh, supercapacitor on the LITTLE
    // output, boot on the big cell.
    let pack = BatteryPack::paper_prototype();
    assert_eq!(pack.big().chemistry(), Chemistry::Nca);
    assert_eq!(
        pack.little().expect("dual pack").chemistry(),
        Chemistry::Lmo
    );
    assert_eq!(pack.big().capacity_ah(), 2.5);
    assert_eq!(pack.active(), Class::Big);
}

#[test]
fn fig6_peak_is_at_the_rated_one_ampere() {
    let tec = Tec::ate31();
    assert!((tec.rated_current_a() - 1.0).abs() < 1e-9);
    let peak = tec.delta_t_steady(1.0);
    for i in [0.2, 0.5, 0.8, 1.2, 1.5, 2.0, 2.2] {
        assert!(tec.delta_t_steady(i) <= peak);
    }
}

#[test]
fn hot_spot_threshold_is_45c() {
    assert_eq!(HOT_SPOT_THRESHOLD_C, 45.0);
}

#[test]
fn table3_reference_points_round_trip_through_table2_models() {
    let model = PowerModel::calibrated(8, 1.0);
    let d = Demand {
        cpu_util: 100.0,
        freq_index: 7,
        brightness: constants::SCREEN_REF_BRIGHTNESS,
        packet_rate: constants::WIFI_REF_ACCESS_PPS,
    };
    let measured = model.device_power_mw(&DeviceState::awake(), &d);
    let table = constants::CPU_C0_MW + constants::SCREEN_ON_MW + constants::WIFI_ACCESS_MW;
    assert!(
        (measured - table).abs() < 1e-6,
        "model {measured} vs Table III sum {table}"
    );
}

#[test]
fn syscall_vocabulary_exceeds_200() {
    assert!(capman::device::syscall::vocabulary_size() > 200);
}

#[test]
fn switch_operates_at_millisecond_scale() {
    // "CAPMAN can switch between batteries in milliseconds."
    use capman::battery::switch::SwitchFacility;
    let mut s = SwitchFacility::default();
    let event = s.switch_to(Class::Little, 0.5).expect("flip");
    let latency = event.completed_at - event.requested_at;
    assert!(latency > 0.0 && latency < 0.01, "latency {latency} s");
}

#[test]
fn prototype_weight_budget_is_respected() {
    // "the total weight of all extra devices is less than 5 gram" — the
    // TEC module is the heavy part (< 2 g per the paper); we check the
    // modelled module is the miniature class, i.e. pumps watts, not tens
    // of watts.
    let tec = Tec::ate31();
    let p = tec.power_w(tec.rated_current_a(), 25.0, 45.0);
    assert!(p < 2.0, "a miniature TEC draws ~1 W, got {p}");
}
