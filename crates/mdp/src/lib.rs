//! Markov decision processes and the structural-similarity machinery of
//! CAPMAN (Section III).
//!
//! The paper casts battery scheduling as a finite MDP
//! `M = {S, A, T, R}`, represents it as a directed bipartite graph
//! `G_M = {V, Lambda, E, Psi, p, r}` of *state* and *action* nodes, and
//! accelerates solving with a structural-similarity recursion
//! (Algorithm 1): action similarity via the Earth Mover's Distance
//! between transition distributions, state similarity via the Hausdorff
//! distance between action-neighbourhood similarity sets. Similar states
//! can reuse each other's decisions, with the value gap bounded by
//! `delta_S(u, v) / (1 - rho)` — the paper's
//! `O(1/(1-rho))`-competitiveness.
//!
//! Modules:
//!
//! * [`mdp`] — the finite MDP with a validating builder; transition
//!   storage is a flat CSR arena with packed per-state action lists.
//! * [`graph`] — the bipartite MDP graph `G_M`.
//! * [`value_iteration`] — exact Bellman solving (the Oracle's engine):
//!   Jacobi sweeps with a parallel schedule that is bit-identical to the
//!   serial one.
//! * [`reference`] — the nested-Vec layout and pre-CSR Gauss–Seidel
//!   solver, kept as test/bench oracles.
//! * [`emd`] — Earth Mover's Distance via a successive-shortest-path
//!   min-cost flow (the paper's SSP subroutine).
//! * [`hausdorff`] — Hausdorff distance between node sets.
//! * [`similarity`] — Algorithm 1 and the value-difference bound.
//! * [`engine`] — the parallel, memoized similarity engine: the same
//!   fixpoint with row-parallel sweeps, an EMD memo cache, and
//!   bound-based pruning of exact EMD solves.
//! * [`abstraction`] — similarity-threshold state aggregation used by the
//!   online scheduler to reuse decisions.
//! * [`pipeline`] — coarse-to-fine recalibration: quotient MDPs built
//!   directly in CSR form from an abstraction ladder, each level's
//!   Bellman solve warm-started from the previous one.
//!
//! # Example
//!
//! ```
//! use capman_mdp::mdp::MdpBuilder;
//! use capman_mdp::value_iteration::solve;
//!
//! let mut b = MdpBuilder::new(3, 2);
//! b.transition(0, 0, 1, 1.0, 0.2);
//! b.transition(0, 1, 2, 1.0, 0.9);
//! let mdp = b.build();
//! let sol = solve(&mdp, 0.9, 1e-9);
//! assert_eq!(sol.policy[0], Some(1)); // the rewarding action wins
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abstraction;
pub mod emd;
pub mod engine;
pub mod graph;
pub mod hausdorff;
pub mod matrix;
pub mod mdp;
pub mod pipeline;
pub mod policy_iteration;
pub mod qlearning;
pub mod reference;
pub mod similarity;
pub mod value_iteration;

pub use engine::{EngineStats, ExecutionMode, RunStats, SimilarityEngine};
pub use graph::MdpGraph;
pub use matrix::SquareMatrix;
pub use mdp::{Mdp, MdpBuilder};
pub use pipeline::{LevelStats, PipelineOutcome, QuotientScratch, RecalibrationPipeline};
pub use similarity::{SimilarityParams, SimilarityResult};
pub use value_iteration::{solve_warm, solve_warm_with, solve_with_mode, Precision, Solution};
