//! The Kinetic Battery Model (KiBaM).
//!
//! KiBaM splits the stored charge into an *available* well (fraction `c`)
//! that supplies the load directly and a *bound* well (fraction `1 - c`)
//! that refills the available well through a valve with rate constant `k`.
//! This single abstraction produces both nonlinear effects CAPMAN's
//! big.LITTLE scheduling exploits:
//!
//! * **rate-capacity effect** — draining faster than the valve refills
//!   leaves bound charge stranded when the available well empties, so high
//!   surge currents extract less total charge;
//! * **recovery effect** — a resting cell's available well refills, which
//!   is why alternating between two cells harvests more charge than
//!   draining one.
//!
//! Big chemistries have small `c` and slow `k` (severe rate-capacity
//! losses), LITTLE chemistries have large `c` and fast `k`.

use serde::{Deserialize, Serialize};

use crate::error::BatteryError;

/// A two-well kinetic battery charge model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kibam {
    /// Total rated charge in coulombs.
    capacity: f64,
    /// Available-charge fraction `c` in `(0, 1)`.
    c: f64,
    /// Valve rate constant `k` in 1/s.
    k: f64,
    /// Charge in the available well, coulombs.
    y1: f64,
    /// Charge in the bound well, coulombs.
    y2: f64,
}

/// Result of drawing charge from a [`Kibam`] for one step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KibamStep {
    /// Charge actually delivered this step, in coulombs.
    pub delivered_c: f64,
    /// Whether the available well ran dry during the step.
    pub starved: bool,
}

impl Kibam {
    /// Maximum internal integration substep relative to `1/k`, chosen so
    /// the explicit Euler update of the valve flow stays stable.
    const MAX_SUBSTEP_K: f64 = 0.2;

    /// Create a full battery.
    ///
    /// # Errors
    ///
    /// Returns an error if `capacity_coulombs <= 0`, `c` is outside
    /// `(0, 1)`, or `k <= 0`.
    pub fn new(capacity_coulombs: f64, c: f64, k: f64) -> Result<Self, BatteryError> {
        if !capacity_coulombs.is_finite() || capacity_coulombs <= 0.0 {
            return Err(BatteryError::NonPositiveCapacity(capacity_coulombs));
        }
        if !(c.is_finite() && c > 0.0 && c < 1.0) {
            return Err(BatteryError::InvalidParameter {
                name: "c",
                value: c,
            });
        }
        if !k.is_finite() || k <= 0.0 {
            return Err(BatteryError::InvalidParameter {
                name: "k",
                value: k,
            });
        }
        Ok(Kibam {
            capacity: capacity_coulombs,
            c,
            k,
            y1: c * capacity_coulombs,
            y2: (1.0 - c) * capacity_coulombs,
        })
    }

    /// Draw `current_a` amperes for `dt` seconds.
    ///
    /// Integrates the two-well dynamics with internally bounded substeps.
    /// If the available well runs dry mid-step the remaining demand is not
    /// served and the step reports `starved = true`.
    ///
    /// # Errors
    ///
    /// Returns an error for negative current or a non-positive `dt`.
    pub fn draw(&mut self, current_a: f64, dt: f64) -> Result<KibamStep, BatteryError> {
        if current_a < 0.0 {
            return Err(BatteryError::NegativeDemand(current_a));
        }
        if !dt.is_finite() || dt <= 0.0 {
            return Err(BatteryError::NonPositiveStep(dt));
        }
        // Effective equalization rate of the head gap, used to bound the
        // explicit Euler substep.
        let gap_rate = self.k * (1.0 / self.c + 1.0 / (1.0 - self.c));
        let max_sub = Self::MAX_SUBSTEP_K / gap_rate;
        let n = (dt / max_sub).ceil().max(1.0) as usize;
        let sub = dt / n as f64;
        let mut delivered = 0.0;
        let mut starved = false;
        for _ in 0..n {
            // Valve flow uses charge-unit heads (classic KiBaM):
            // h1 = y1/c, h2 = y2/(1-c).
            let flow = self.k * (self.y2 / (1.0 - self.c) - self.y1 / self.c);
            // Valve flow moves charge between wells (can be negative when
            // the available well is fuller, e.g. right after a swap).
            let moved = flow * sub;
            let moved = moved.clamp(-self.y1, self.y2);
            self.y1 += moved;
            self.y2 -= moved;
            let want = current_a * sub;
            let got = want.min(self.y1);
            self.y1 -= got;
            delivered += got;
            if got + 1e-15 < want {
                starved = true;
            }
        }
        Ok(KibamStep {
            delivered_c: delivered,
            starved,
        })
    }

    /// Let the battery rest (recover) for `dt` seconds.
    ///
    /// # Errors
    ///
    /// Returns an error for a non-positive `dt`.
    pub fn rest(&mut self, dt: f64) -> Result<(), BatteryError> {
        self.draw(0.0, dt).map(|_| ())
    }

    /// Charge with `current_a` amperes for `dt` seconds.
    ///
    /// Charge enters the available well directly and diffuses into the
    /// bound well through the valve; intake stops at the rated capacity.
    /// Returns the charge actually accepted, in coulombs.
    ///
    /// # Errors
    ///
    /// Returns an error for negative current or a non-positive `dt`.
    pub fn charge(&mut self, current_a: f64, dt: f64) -> Result<f64, BatteryError> {
        if current_a < 0.0 {
            return Err(BatteryError::NegativeDemand(current_a));
        }
        if !dt.is_finite() || dt <= 0.0 {
            return Err(BatteryError::NonPositiveStep(dt));
        }
        let gap_rate = self.k * (1.0 / self.c + 1.0 / (1.0 - self.c));
        let max_sub = Self::MAX_SUBSTEP_K / gap_rate;
        let n = (dt / max_sub).ceil().max(1.0) as usize;
        let sub = dt / n as f64;
        let mut accepted = 0.0;
        for _ in 0..n {
            let flow = self.k * (self.y2 / (1.0 - self.c) - self.y1 / self.c);
            let moved = (flow * sub).clamp(-self.y1, self.y2);
            self.y1 += moved;
            self.y2 -= moved;
            let room = (self.capacity - (self.y1 + self.y2)).max(0.0);
            // The available well also saturates at its own brim.
            let brim = (self.c * self.capacity - self.y1).max(0.0);
            let got = (current_a * sub).min(room).min(brim);
            self.y1 += got;
            accepted += got;
        }
        Ok(accepted)
    }

    /// Head height of the available well in `[0, 1]`.
    ///
    /// This drives the terminal voltage: it collapses under surges and
    /// climbs back during rest, producing the V-edge of Fig. 3.
    pub fn h1(&self) -> f64 {
        (self.y1 / (self.c * self.capacity)).clamp(0.0, 1.0)
    }

    /// Head height of the bound well in `[0, 1]`.
    pub fn h2(&self) -> f64 {
        (self.y2 / ((1.0 - self.c) * self.capacity)).clamp(0.0, 1.0)
    }

    /// Total state of charge: all remaining charge over rated capacity.
    pub fn total_soc(&self) -> f64 {
        ((self.y1 + self.y2) / self.capacity).clamp(0.0, 1.0)
    }

    /// Remaining charge in coulombs (both wells).
    pub fn remaining_coulombs(&self) -> f64 {
        self.y1 + self.y2
    }

    /// Charge stranded in the bound well if discharge stopped now, coulombs.
    pub fn bound_coulombs(&self) -> f64 {
        self.y2
    }

    /// Whether the available well is (effectively) empty.
    pub fn is_starved(&self) -> bool {
        self.y1 <= self.capacity * 1e-9
    }

    /// Rated capacity in coulombs.
    pub fn capacity_coulombs(&self) -> f64 {
        self.capacity
    }

    /// The available-charge fraction `c`.
    pub fn c(&self) -> f64 {
        self.c
    }

    /// The valve rate constant `k`.
    pub fn k(&self) -> f64 {
        self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell() -> Kibam {
        // 2500 mAh = 9000 C, LITTLE-ish parameters.
        Kibam::new(9000.0, 0.75, 4.0e-3).expect("valid")
    }

    #[test]
    fn starts_full_and_balanced() {
        let k = cell();
        assert!((k.total_soc() - 1.0).abs() < 1e-12);
        assert!((k.h1() - 1.0).abs() < 1e-12);
        assert!((k.h2() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_draw_conserves_charge() {
        let mut k = cell();
        let before = k.remaining_coulombs();
        let step = k.draw(1.0, 100.0).expect("draw");
        let after = k.remaining_coulombs();
        assert!((before - after - step.delivered_c).abs() < 1e-6);
    }

    #[test]
    fn high_rate_extracts_less_total_charge_than_low_rate() {
        // Rate-capacity effect: drain at 0.5 A vs 5 A until starved.
        let drain = |current: f64| -> f64 {
            let mut k = cell();
            let mut delivered = 0.0;
            for _ in 0..1_000_000 {
                let s = k.draw(current, 1.0).expect("draw");
                delivered += s.delivered_c;
                if s.starved {
                    break;
                }
            }
            delivered
        };
        let slow = drain(0.5);
        let fast = drain(20.0);
        assert!(
            fast < slow * 0.97,
            "fast drain should strand charge: fast={fast}, slow={slow}"
        );
    }

    #[test]
    fn rest_recovers_available_charge() {
        let mut k = cell();
        // Surge until head drops well below bound head.
        k.draw(8.0, 600.0).expect("draw");
        let h1_after_surge = k.h1();
        assert!(h1_after_surge < k.h2());
        k.rest(3600.0).expect("rest");
        assert!(k.h1() > h1_after_surge, "recovery should raise h1");
        // After a long rest, the heads equalize.
        assert!((k.h1() - k.h2()).abs() < 0.01);
    }

    #[test]
    fn starved_step_reports_partial_delivery() {
        let mut k = Kibam::new(10.0, 0.5, 1.0e-4).expect("valid");
        // Available well holds 5 C; ask for 100 C in one second.
        let s = k.draw(100.0, 1.0).expect("draw");
        assert!(s.starved);
        assert!(s.delivered_c < 6.0);
        assert!(k.is_starved());
    }

    #[test]
    fn big_parameters_strand_more_charge_than_little() {
        let surge_yield = |c: f64, k: f64| -> f64 {
            let mut b = Kibam::new(9000.0, c, k).expect("valid");
            let mut delivered = 0.0;
            loop {
                let s = b.draw(6.0, 1.0).expect("draw");
                delivered += s.delivered_c;
                if s.starved {
                    return delivered;
                }
            }
        };
        let big = surge_yield(0.5, 8.0e-4);
        let little = surge_yield(0.75, 4.0e-3);
        assert!(
            little > big * 1.1,
            "LITTLE should out-deliver big under surges: little={little}, big={big}"
        );
    }

    #[test]
    fn rejects_invalid_construction() {
        assert!(Kibam::new(0.0, 0.5, 1e-3).is_err());
        assert!(Kibam::new(10.0, 0.0, 1e-3).is_err());
        assert!(Kibam::new(10.0, 1.0, 1e-3).is_err());
        assert!(Kibam::new(10.0, 0.5, 0.0).is_err());
        assert!(Kibam::new(10.0, 0.5, -1.0).is_err());
    }

    #[test]
    fn rejects_invalid_draw() {
        let mut k = cell();
        assert!(k.draw(-1.0, 1.0).is_err());
        assert!(k.draw(1.0, 0.0).is_err());
        assert!(k.draw(1.0, -1.0).is_err());
    }

    #[test]
    fn soc_never_exceeds_bounds_under_long_rest() {
        let mut k = cell();
        k.draw(2.0, 1000.0).expect("draw");
        k.rest(1_000_000.0).expect("rest");
        assert!(k.total_soc() <= 1.0);
        assert!(k.h1() <= 1.0 && k.h2() <= 1.0);
    }
}
