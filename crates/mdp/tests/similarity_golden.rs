//! Golden regression tests for Algorithm 1 on the twin-graph family.
//!
//! The fixpoint matrices below were computed by the reference
//! `structural_similarity` at the paper's parameters and checked in.
//! Any behavioural change to the recursion, the EMD solver, the
//! Hausdorff distance, or the base cases shows up here as a diff
//! against physics that was hand-verified once:
//!
//! * `twin_graph` — two isomorphic branches, twins maximally similar.
//! * `asym_twin_graph` — one branch reward lowered: similarity drops by
//!   the reward gap through the EMD ground distance.
//! * `noisy_twin_graph` — twins share a common noisy successor; still
//!   maximally similar because the distributions are isomorphic.
//!
//! The fast engine ([`SimilarityEngine::parallel`]) is held to the same
//! goldens, so the memoized/pruned path cannot silently drift from the
//! reference.

use capman_mdp::engine::SimilarityEngine;
use capman_mdp::graph::MdpGraph;
use capman_mdp::matrix::SquareMatrix;
use capman_mdp::mdp::MdpBuilder;
use capman_mdp::similarity::{structural_similarity, SimilarityParams};

const TOL: f64 = 1e-12;

fn twin_graph() -> MdpGraph {
    let mut b = MdpBuilder::new(5, 2);
    b.transition(0, 0, 1, 1.0, 0.4);
    b.transition(0, 1, 2, 1.0, 0.4);
    b.transition(1, 0, 3, 1.0, 0.8);
    b.transition(2, 0, 4, 1.0, 0.8);
    MdpGraph::from_mdp(&b.build())
}

/// The twin graph with one branch's reward lowered from 0.8 to 0.3.
fn asym_twin_graph() -> MdpGraph {
    let mut b = MdpBuilder::new(5, 2);
    b.transition(0, 0, 1, 1.0, 0.4);
    b.transition(0, 1, 2, 1.0, 0.4);
    b.transition(1, 0, 3, 1.0, 0.8);
    b.transition(2, 0, 4, 1.0, 0.3);
    MdpGraph::from_mdp(&b.build())
}

/// Twins whose branches leak 30% of their mass to a shared successor.
fn noisy_twin_graph() -> MdpGraph {
    let mut b = MdpBuilder::new(6, 2);
    b.transition(0, 0, 1, 1.0, 0.4);
    b.transition(0, 1, 2, 1.0, 0.4);
    b.transition(1, 0, 3, 0.7, 0.8);
    b.transition(1, 0, 5, 0.3, 0.8);
    b.transition(2, 0, 4, 0.7, 0.8);
    b.transition(2, 0, 5, 0.3, 0.8);
    MdpGraph::from_mdp(&b.build())
}

fn assert_matrix_close(got: &SquareMatrix, want: &[&[f64]], what: &str) {
    assert_eq!(got.n(), want.len(), "{what}: dimension");
    for (i, row) in want.iter().enumerate() {
        for (j, &w) in row.iter().enumerate() {
            let g = got.get(i, j);
            assert!((g - w).abs() <= TOL, "{what}[{i}][{j}] = {g}, golden {w}");
        }
    }
}

/// Check the reference and the fast engine against the same goldens.
fn check(
    graph: &MdpGraph,
    params: &SimilarityParams,
    want_iterations: usize,
    want_s: &[&[f64]],
    want_a: &[&[f64]],
) {
    let r = structural_similarity(graph, params);
    assert!(r.converged, "reference must converge");
    assert_eq!(r.iterations, want_iterations, "iteration count");
    assert_matrix_close(&r.sigma_s, want_s, "reference sigma_s");
    assert_matrix_close(&r.sigma_a, want_a, "reference sigma_a");

    let e = SimilarityEngine::parallel().compute(graph, params);
    assert!(e.converged, "engine must converge");
    assert_matrix_close(&e.sigma_s, want_s, "engine sigma_s");
    assert_matrix_close(&e.sigma_a, want_a, "engine sigma_a");
}

#[test]
fn twin_graph_at_rho_half() {
    // Twins (states 1, 2 and their actions) are identical; the root's
    // off-diagonal similarity is C_S * (1 - (1-C_A)*Δrwd - C_A*EMD).
    check(
        &twin_graph(),
        &SimilarityParams::paper(0.5),
        3,
        &[
            &[1.0, 0.3, 0.3, 0.0, 0.0],
            &[0.3, 1.0, 1.0, 0.0, 0.0],
            &[0.3, 1.0, 1.0, 0.0, 0.0],
            &[0.0, 0.0, 0.0, 1.0, 1.0],
            &[0.0, 0.0, 0.0, 1.0, 1.0],
        ],
        &[
            &[1.0, 1.0, 0.3, 0.3],
            &[1.0, 1.0, 0.3, 0.3],
            &[0.3, 0.3, 1.0, 1.0],
            &[0.3, 0.3, 1.0, 1.0],
        ],
    );
}

#[test]
fn twin_graph_at_paper_rho() {
    // rho = 0.05 weighs the reward term (1 - C_A) far heavier, pushing
    // the root-vs-branch similarity up to 0.57.
    check(
        &twin_graph(),
        &SimilarityParams::paper(0.05),
        3,
        &[
            &[1.0, 0.57, 0.57, 0.0, 0.0],
            &[0.57, 1.0, 1.0, 0.0, 0.0],
            &[0.57, 1.0, 1.0, 0.0, 0.0],
            &[0.0, 0.0, 0.0, 1.0, 1.0],
            &[0.0, 0.0, 0.0, 1.0, 1.0],
        ],
        &[
            &[1.0, 1.0, 0.57, 0.57],
            &[1.0, 1.0, 0.57, 0.57],
            &[0.57, 0.57, 1.0, 1.0],
            &[0.57, 0.57, 1.0, 1.0],
        ],
    );
}

#[test]
fn twin_graph_with_absorbing_distance() {
    // d_uv = 0.25 between targets propagates: sigma_S(3,4) = 0.75, the
    // branch actions pay C_A * 0.25, and the twins land at 0.875.
    let mut params = SimilarityParams::paper(0.5);
    params.absorbing_distance = 0.25;
    check(
        &twin_graph(),
        &params,
        3,
        &[
            &[1.0, 0.3, 0.3, 0.0, 0.0],
            &[0.3, 1.0, 0.875, 0.0, 0.0],
            &[0.3, 0.875, 1.0, 0.0, 0.0],
            &[0.0, 0.0, 0.0, 1.0, 0.75],
            &[0.0, 0.0, 0.0, 0.75, 1.0],
        ],
        &[
            &[1.0, 0.9375, 0.3, 0.3],
            &[0.9375, 1.0, 0.3, 0.3],
            &[0.3, 0.3, 1.0, 0.875],
            &[0.3, 0.3, 0.875, 1.0],
        ],
    );
}

#[test]
fn asym_twin_graph_at_rho_half() {
    // The 0.5-reward gap splits the branch actions: sigma_A(2,3) drops
    // to 1 - (1-0.5)*0.5 = 0.75 and the twins to C_S*(1-0.25) = 0.75.
    check(
        &asym_twin_graph(),
        &SimilarityParams::paper(0.5),
        3,
        &[
            &[1.0, 0.3, 0.45, 0.0, 0.0],
            &[0.3, 1.0, 0.75, 0.0, 0.0],
            &[0.45, 0.75, 1.0, 0.0, 0.0],
            &[0.0, 0.0, 0.0, 1.0, 1.0],
            &[0.0, 0.0, 0.0, 1.0, 1.0],
        ],
        &[
            &[1.0, 0.875, 0.3, 0.45],
            &[0.875, 1.0, 0.3, 0.45],
            &[0.3, 0.3, 1.0, 0.75],
            &[0.45, 0.45, 0.75, 1.0],
        ],
    );
}

#[test]
fn noisy_twin_graph_at_rho_half() {
    // The shared 30% leak is isomorphic across branches, so the twins
    // stay maximally similar despite the split distributions.
    check(
        &noisy_twin_graph(),
        &SimilarityParams::paper(0.5),
        3,
        &[
            &[1.0, 0.3, 0.3, 0.0, 0.0, 0.0],
            &[0.3, 1.0, 1.0, 0.0, 0.0, 0.0],
            &[0.3, 1.0, 1.0, 0.0, 0.0, 0.0],
            &[0.0, 0.0, 0.0, 1.0, 1.0, 1.0],
            &[0.0, 0.0, 0.0, 1.0, 1.0, 1.0],
            &[0.0, 0.0, 0.0, 1.0, 1.0, 1.0],
        ],
        &[
            &[1.0, 1.0, 0.3, 0.3],
            &[1.0, 1.0, 0.3, 0.3],
            &[0.3, 0.3, 1.0, 1.0],
            &[0.3, 0.3, 1.0, 1.0],
        ],
    );
}
