//! Shared immutable fleet profiles and the devices derived from them.
//!
//! A fleet is built from a handful of *cohorts* — shared, immutable
//! [`FleetProfile`]s held behind `Arc` — and thousands of cheap
//! per-device [`DeviceSpec`]s derived from them. A device spec carries
//! only what differs between devices: a trace seed, an RNG-seeded
//! demand perturbation and an ambient-temperature offset. Everything
//! heavy (workload generator parameters, phone model, simulation
//! configuration, calibrator spec) lives once per cohort and is never
//! copied per device.

use std::sync::Arc;

use capman_core::config::SimConfig;
use capman_core::experiments::PolicyKind;
use capman_core::online::CalibratorSpec;
use capman_device::phone::PhoneProfile;
use capman_workload::{generate_perturbed, Perturbation, Trace, WorkloadKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One cohort: the shared immutable description thousands of devices
/// are instantiated from.
#[derive(Debug, Clone)]
pub struct FleetProfile {
    /// Cohort label (reports, staleness histograms).
    pub name: String,
    /// The scheduling policy the cohort's devices run.
    pub kind: PolicyKind,
    /// Workload family of the cohort's traces.
    pub workload: WorkloadKind,
    /// Phone model shared by the cohort.
    pub phone: PhoneProfile,
    /// Simulation configuration (horizon, ambient base, TEC).
    pub config: SimConfig,
    /// Calibrator configuration for CAPMAN cohorts.
    pub calibrator: CalibratorSpec,
    /// Base seed; device `i` derives its own seed stream from it.
    pub base_seed: u64,
    /// Half-width of the uniform per-device ambient offset, degC.
    pub ambient_jitter_c: f64,
    /// Relative half-width of the per-device demand perturbation.
    pub demand_jitter: f64,
}

impl FleetProfile {
    /// A CAPMAN cohort with the paper's defaults on the Nexus.
    pub fn capman(name: impl Into<String>, workload: WorkloadKind, base_seed: u64) -> Self {
        FleetProfile {
            name: name.into(),
            kind: PolicyKind::Capman,
            workload,
            phone: PhoneProfile::nexus(),
            config: SimConfig::paper_with_tec(),
            calibrator: CalibratorSpec::paper(),
            base_seed,
            ambient_jitter_c: 3.0,
            demand_jitter: 0.15,
        }
    }

    /// Derive device `ordinal`'s spec. Deterministic: the same profile
    /// and ordinal always produce the same device.
    pub fn device(&self, cohort: usize, ordinal: u64) -> DeviceSpec {
        // Split one RNG stream per device off the cohort seed; the
        // trace seed and the perturbation seed are separated so growing
        // the perturbation model never reshuffles trace generation.
        let mut rng = StdRng::seed_from_u64(self.base_seed ^ ordinal.wrapping_mul(0x9E37_79B9));
        let trace_seed: u64 = rng.gen();
        let perturb_seed: u64 = rng.gen();
        let ambient_c = if self.ambient_jitter_c > 0.0 {
            self.config.ambient_c + rng.gen_range(-self.ambient_jitter_c..=self.ambient_jitter_c)
        } else {
            self.config.ambient_c
        };
        DeviceSpec {
            device_id: (cohort as u64) << 32 | ordinal,
            cohort,
            trace_seed,
            perturbation: Perturbation::sampled(perturb_seed, self.demand_jitter),
            ambient_c,
        }
    }

    /// Generate the (perturbed) trace of one device of this cohort.
    pub fn trace(&self, spec: &DeviceSpec) -> Trace {
        generate_perturbed(
            self.workload,
            self.config.max_horizon_s,
            spec.trace_seed,
            spec.perturbation,
        )
    }

    /// The device's simulation configuration: the cohort configuration
    /// with the device's perturbed ambient.
    pub fn device_config(&self, spec: &DeviceSpec) -> SimConfig {
        SimConfig {
            ambient_c: spec.ambient_c,
            ..self.config
        }
    }
}

/// The cheap per-device record: everything that differs from the
/// cohort's shared profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceSpec {
    /// Fleet-unique id (`cohort << 32 | ordinal`).
    pub device_id: u64,
    /// Index of the cohort profile this device instantiates.
    pub cohort: usize,
    /// Trace-generation seed.
    pub trace_seed: u64,
    /// Demand perturbation applied on top of the shared trace family.
    pub perturbation: Perturbation,
    /// Perturbed ambient temperature, degC.
    pub ambient_c: f64,
}

/// A complete fleet: shared cohort profiles plus the device list.
#[derive(Debug, Clone)]
pub struct Fleet {
    /// Cohort profiles, `Arc`-shared with every shard and pool worker.
    pub profiles: Vec<Arc<FleetProfile>>,
    /// Devices in fleet order (outcome order follows this).
    pub devices: Vec<DeviceSpec>,
}

impl Fleet {
    /// Build a fleet with `devices_per_profile` devices in each cohort,
    /// interleaved round-robin so every shard sees a workload mix.
    ///
    /// # Panics
    ///
    /// Panics if `profiles` is empty or `devices_per_profile` is zero.
    pub fn build(profiles: Vec<FleetProfile>, devices_per_profile: usize) -> Self {
        assert!(!profiles.is_empty(), "fleet needs at least one profile");
        assert!(devices_per_profile > 0, "fleet needs devices");
        let profiles: Vec<Arc<FleetProfile>> = profiles.into_iter().map(Arc::new).collect();
        let mut devices = Vec::with_capacity(profiles.len() * devices_per_profile);
        for ordinal in 0..devices_per_profile as u64 {
            for (cohort, profile) in profiles.iter().enumerate() {
                devices.push(profile.device(cohort, ordinal));
            }
        }
        Fleet { profiles, devices }
    }

    /// Total devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the fleet has no devices.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }
}

/// A fleet described by rule instead of by roster: cohort profiles plus
/// a device count, with every [`DeviceSpec`] derived on demand.
///
/// [`Fleet`] materializes one spec per device, which is fine at tens of
/// thousands of devices and ruinous at a million (a spec is ~64 bytes;
/// the roster alone would be tens of megabytes of warm-up allocation).
/// A plan stores only the shared profiles; [`FleetPlan::spec`] derives
/// device `i`'s spec arithmetically in exactly the order
/// [`Fleet::build`] deals devices (ordinal-major, cohorts interleaved
/// round-robin), so plan-driven runs enumerate the identical fleet.
#[derive(Debug, Clone)]
pub struct FleetPlan {
    profiles: Vec<Arc<FleetProfile>>,
    devices_per_profile: usize,
}

impl FleetPlan {
    /// A plan with `devices_per_profile` devices in each cohort.
    ///
    /// # Panics
    ///
    /// Panics if `profiles` is empty or `devices_per_profile` is zero.
    pub fn new(profiles: Vec<FleetProfile>, devices_per_profile: usize) -> Self {
        assert!(!profiles.is_empty(), "plan needs at least one profile");
        assert!(devices_per_profile > 0, "plan needs devices");
        FleetPlan {
            profiles: profiles.into_iter().map(Arc::new).collect(),
            devices_per_profile,
        }
    }

    /// The shared cohort profiles.
    pub fn profiles(&self) -> &[Arc<FleetProfile>] {
        &self.profiles
    }

    /// Total devices the plan describes.
    pub fn len(&self) -> usize {
        self.profiles.len() * self.devices_per_profile
    }

    /// Whether the plan describes no devices.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Derive device `i`'s spec (in [`Fleet::build`] deal order).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn spec(&self, i: usize) -> DeviceSpec {
        assert!(i < self.len(), "device index out of range");
        let cohort = i % self.profiles.len();
        let ordinal = (i / self.profiles.len()) as u64;
        self.profiles[cohort].device(cohort, ordinal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_derivation_is_deterministic() {
        let p = FleetProfile::capman("video", WorkloadKind::Video, 42);
        let a = p.device(0, 5);
        let b = p.device(0, 5);
        assert_eq!(a, b);
        let c = p.device(0, 6);
        assert_ne!(a.trace_seed, c.trace_seed, "ordinals must diverge");
    }

    #[test]
    fn ambient_jitter_stays_in_band() {
        let p = FleetProfile::capman("video", WorkloadKind::Video, 1);
        for ordinal in 0..200 {
            let d = p.device(0, ordinal);
            assert!((d.ambient_c - p.config.ambient_c).abs() <= p.ambient_jitter_c + 1e-12);
        }
    }

    #[test]
    fn fleet_build_interleaves_cohorts() {
        let fleet = Fleet::build(
            vec![
                FleetProfile::capman("a", WorkloadKind::Video, 1),
                FleetProfile::capman("b", WorkloadKind::Pcmark, 2),
            ],
            3,
        );
        assert_eq!(fleet.len(), 6);
        let cohorts: Vec<usize> = fleet.devices.iter().map(|d| d.cohort).collect();
        assert_eq!(cohorts, [0, 1, 0, 1, 0, 1]);
        // Ids are fleet-unique.
        let mut ids: Vec<u64> = fleet.devices.iter().map(|d| d.device_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 6);
    }

    #[test]
    fn plan_derives_exactly_the_built_fleet() {
        let profiles = || {
            vec![
                FleetProfile::capman("a", WorkloadKind::Video, 1),
                FleetProfile::capman("b", WorkloadKind::Pcmark, 2),
                FleetProfile::capman("c", WorkloadKind::Geekbench, 3),
            ]
        };
        let fleet = Fleet::build(profiles(), 4);
        let plan = FleetPlan::new(profiles(), 4);
        assert_eq!(plan.len(), fleet.len());
        for (i, spec) in fleet.devices.iter().enumerate() {
            assert_eq!(plan.spec(i), *spec, "device {i} must derive identically");
        }
    }

    #[test]
    fn perturbed_traces_differ_across_devices_but_share_structure() {
        let mut shortened = FleetProfile::capman("video", WorkloadKind::Video, 9);
        shortened.config.max_horizon_s = 900.0;
        let d0 = shortened.device(0, 0);
        let d1 = shortened.device(0, 1);
        let t0 = shortened.trace(&d0);
        let t1 = shortened.trace(&d1);
        assert_ne!(t0, t1, "devices must not share one canonical trace");
        assert_eq!(t0.name(), t1.name(), "same workload family");
    }
}
