//! The committed `examples/lab/fig12` experiment must reproduce the
//! evaluation's own Fig. 12 numbers: running the sweep through
//! `experiment.yaml` + `tasks.jsonl` and reading the emitted
//! `result.json` trials back yields exactly the outcomes the direct
//! `Scenario` grid produces — bit-for-bit f64 equality, no tolerance.

use std::fs;
use std::path::{Path, PathBuf};

use capman_core::config::SimConfig;
use capman_core::experiments::PolicyKind;
use capman_core::scenario::{Scenario, ScenarioRunner};
use capman_device::phone::PhoneProfile;
use capman_lab::{read_results, run_to_dir, AnalysisTable, ExperimentSpec, Task, TrialOutcome};
use capman_workload::WorkloadKind;

fn example_dir(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/lab")
        .join(name)
}

fn load(name: &str) -> (ExperimentSpec, Vec<Task>) {
    let dir = example_dir(name);
    let yaml = fs::read_to_string(dir.join("experiment.yaml")).expect("committed experiment.yaml");
    let jsonl = fs::read_to_string(dir.join("tasks.jsonl")).expect("committed tasks.jsonl");
    (
        ExperimentSpec::from_yaml(&yaml).expect("spec parses"),
        Task::from_jsonl(&jsonl).expect("tasks parse"),
    )
}

#[test]
fn the_committed_fig12_example_reproduces_the_direct_grid_exactly() {
    let (spec, tasks) = load("fig12");
    assert_eq!(spec.name, "fig12");
    assert_eq!(spec.variants.len(), PolicyKind::ALL.len());
    assert_eq!(tasks.len(), WorkloadKind::fig12().len());

    let out = std::env::temp_dir().join(format!("capman-lab-fig12-{}", std::process::id()));
    let _ = fs::remove_dir_all(&out);
    run_to_dir(&spec, &tasks, &out).expect("sweep runs");
    let trials = read_results(&out).expect("emitted result.json trials read back");
    assert_eq!(trials.len(), 30, "6 workloads x 5 policies x 1 rep");

    // The same grid, built the way the evaluation builds it: the
    // default config per policy (TEC iff the policy drives one) at the
    // example's compressed horizon, one ScenarioRunner batch.
    let horizon = spec.horizon_s.expect("example pins a horizon");
    let scenarios: Vec<Scenario> = WorkloadKind::fig12()
        .iter()
        .flat_map(|&workload| {
            PolicyKind::ALL.iter().map(move |&kind| {
                let mut config = if kind.has_tec() {
                    SimConfig::paper_with_tec()
                } else {
                    SimConfig::paper()
                };
                config.max_horizon_s = horizon;
                Scenario::new(kind, workload, PhoneProfile::nexus(), 42, config)
            })
        })
        .collect();
    let direct = ScenarioRunner::new().run(&scenarios);

    // read_results sorts by trial id, which matches plan order here
    // (tasks outermost, variants inner) — the same row-major layout as
    // the direct grid. Objectives must agree exactly.
    for (trial, outcome) in trials.iter().zip(&direct) {
        assert_eq!(
            trial.objective, outcome.service_time_s,
            "{}: sweep objective diverged from the direct scenario run",
            trial.trial_id
        );
        assert_eq!(trial.objective_name, "service_time_s");
        assert_eq!(trial.seed, 42, "no per-task seed, single rep");
        assert_eq!(
            trial.metric("work_served"),
            Some(outcome.work_served),
            "{}: secondary metrics must reproduce too",
            trial.trial_id
        );
    }
    // Variant labels line up with figure order.
    assert_eq!(trials[0].variant, "oracle");
    assert_eq!(trials[1].variant, "capman");
    assert_eq!(trials[4].variant, "practice");

    // The aggregation the CI artifact is built from stays consistent
    // with the raw trials: one row per (task, variant), n = 1.
    let table = AnalysisTable::from_trials(&spec.name, &trials);
    assert_eq!(table.rows.len(), 30);
    assert!(table.rows.iter().all(|r| r.n == 1));

    let _ = fs::remove_dir_all(&out);
}

#[test]
fn the_committed_smoke_example_runs_end_to_end() {
    let (spec, tasks) = load("smoke");
    let cells = capman_lab::plan(&spec, &tasks);
    assert_eq!(cells.len(), 2, "the CI smoke sweep is exactly two cells");

    let out = std::env::temp_dir().join(format!("capman-lab-smoke-{}", std::process::id()));
    let _ = fs::remove_dir_all(&out);
    let results = run_to_dir(&spec, &tasks, &out).expect("sweep runs");
    assert_eq!(results.len(), 2);
    assert!(
        results
            .iter()
            .all(|r| matches!(r.outcome, TrialOutcome::Success | TrialOutcome::Failure)),
        "smoke trials must execute, not error"
    );
    assert!(results.iter().all(|r| r.objective > 0.0));
    assert!(out.join("experiment.json").exists());
    assert!(out.join("trials/t000-v00-r00/result.json").exists());
    let _ = fs::remove_dir_all(&out);
}
