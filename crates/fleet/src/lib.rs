//! Fleet simulation service: thousands of phone instances, sharded.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod dispatch;
pub mod policy;
pub mod pool;
pub mod profile;
pub mod runner;
pub mod sketch;

pub use arena::{ArenaConfig, ArenaRunner, DeviceArena, DeviceHandle};
pub use dispatch::FleetPolicy;
pub use policy::PooledCapmanPolicy;
pub use pool::{
    CalibrationBackend, CalibrationPool, CalibrationSnapshot, PoolConfig, PoolCounters,
    SnapshotTrace, SubmitOutcome,
};
pub use profile::{DeviceSpec, Fleet, FleetPlan, FleetProfile};
pub use runner::{
    CalibrationMode, DeviceSummary, FleetAggregate, FleetConfig, FleetResult, FleetRunner,
};
pub use sketch::QuantileSketch;
