//! The span tracer: per-thread ring buffers of `(span, parent, label,
//! t_start, t_end)` records.
//!
//! Recording is designed for the fleet's threading model: every thread
//! owns one ring buffer, a span push touches only the owning thread's
//! ring (the per-ring mutex is uncontended in steady state — the only
//! other locker is an end-of-run [`drain`](Tracer::drain)), and span
//! identity comes from one global atomic, so records from different
//! threads can be correlated after the fact. A full ring overwrites its
//! oldest record and counts the drop instead of blocking or growing —
//! tracing must never apply backpressure to the simulation.
//!
//! Spans are RAII: [`Tracer::span`] returns a [`SpanGuard`] that
//! records the interval when dropped. Nesting is tracked per thread —
//! a span started while another is open becomes its child, which is
//! what makes the Chrome export (see [`crate::export`]) render
//! calibration solves nested inside shard execution. Zero-length
//! *events* ([`Tracer::event`]) mark instants (pool request / publish /
//! adopt hops) with the same parent correlation.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One completed span (or instant event, when `end_ns == start_ns` and
/// `is_event` is set).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Process-unique span id (never 0).
    pub id: u64,
    /// Id of the enclosing span on the same thread, 0 for roots.
    pub parent: u64,
    /// Static label (`"calibrate"`, `"fleet_shard"`, ...).
    pub label: &'static str,
    /// Start, nanoseconds since the tracer's epoch.
    pub start_ns: u64,
    /// End, nanoseconds since the tracer's epoch.
    pub end_ns: u64,
    /// Tracer-assigned thread index.
    pub thread: u64,
    /// Free numeric payload (cohort index, shard index, level size...).
    pub arg: u64,
    /// Whether this is an instant event rather than an interval.
    pub is_event: bool,
}

#[derive(Debug, Default)]
struct RingState {
    records: VecDeque<SpanRecord>,
    dropped: u64,
}

#[derive(Debug)]
struct ThreadRing {
    thread: u64,
    capacity: usize,
    state: Mutex<RingState>,
}

impl ThreadRing {
    fn push(&self, record: SpanRecord) {
        let mut state = self.state.lock().expect("span ring poisoned");
        if state.records.len() == self.capacity {
            state.records.pop_front();
            state.dropped += 1;
        }
        state.records.push_back(record);
    }
}

/// Per-thread recording context for one tracer: the ring plus the open
/// span stack that tracks nesting.
struct ThreadCtx {
    tracer_id: usize,
    ring: Arc<ThreadRing>,
    stack: Vec<u64>,
    tick: u32,
}

thread_local! {
    /// Contexts for every tracer this thread has recorded into. A
    /// linear scan — in practice one global tracer, plus short-lived
    /// test instances.
    static THREAD_CTXS: RefCell<Vec<ThreadCtx>> = const { RefCell::new(Vec::new()) };
}

/// Everything a [`Tracer::drain`] hands back.
#[derive(Debug, Clone, Default)]
pub struct TraceDrain {
    /// Records from every thread's ring, sorted by `(start_ns, id)`.
    /// Each record appears in exactly one drain.
    pub records: Vec<SpanRecord>,
    /// Records lost to ring overwrites since the previous drain.
    pub dropped: u64,
}

/// The span recorder (see the module docs).
#[derive(Debug)]
pub struct Tracer {
    tracer_id: usize,
    epoch: Instant,
    capacity: usize,
    next_span: AtomicU64,
    next_thread: AtomicU64,
    sample_every: AtomicU32,
    rings: Mutex<Vec<Arc<ThreadRing>>>,
}

/// Default per-thread ring capacity: at ~64 B a record, 64k spans keep
/// a thread's ring around 4 MiB while comfortably holding every span of
/// a 16k-device bench shard.
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

static NEXT_TRACER_ID: AtomicUsize = AtomicUsize::new(1);

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new(DEFAULT_RING_CAPACITY)
    }
}

impl Tracer {
    /// A tracer whose per-thread rings hold `capacity` records each.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        Tracer {
            tracer_id: NEXT_TRACER_ID.fetch_add(1, Ordering::Relaxed),
            epoch: Instant::now(),
            capacity,
            next_span: AtomicU64::new(1),
            next_thread: AtomicU64::new(0),
            sample_every: AtomicU32::new(1),
            rings: Mutex::new(Vec::new()),
        }
    }

    /// Record every `every`-th span per thread (1 = all, the default;
    /// 0 = none). Events follow the same ratio.
    pub fn set_sample_every(&self, every: u32) {
        self.sample_every.store(every, Ordering::Relaxed);
    }

    /// The configured sampling denominator.
    pub fn sample_every(&self) -> u32 {
        self.sample_every.load(Ordering::Relaxed)
    }

    /// Nanoseconds since this tracer was created.
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Run `f` with this thread's context, registering a fresh ring on
    /// the thread's first record into this tracer.
    fn with_ctx<R>(&self, f: impl FnOnce(&mut ThreadCtx) -> R) -> R {
        THREAD_CTXS.with(|ctxs| {
            let mut ctxs = ctxs.borrow_mut();
            if let Some(ctx) = ctxs.iter_mut().find(|c| c.tracer_id == self.tracer_id) {
                return f(ctx);
            }
            let ring = Arc::new(ThreadRing {
                thread: self.next_thread.fetch_add(1, Ordering::Relaxed),
                capacity: self.capacity,
                state: Mutex::new(RingState::default()),
            });
            self.rings
                .lock()
                .expect("ring directory poisoned")
                .push(Arc::clone(&ring));
            ctxs.push(ThreadCtx {
                tracer_id: self.tracer_id,
                ring,
                stack: Vec::new(),
                tick: 0,
            });
            f(ctxs.last_mut().expect("just pushed"))
        })
    }

    /// This thread's sampling decision: admit the record and advance the
    /// per-thread tick.
    fn sampled(&self, ctx: &mut ThreadCtx) -> bool {
        let every = self.sample_every.load(Ordering::Relaxed);
        if every == 0 {
            return false;
        }
        let tick = ctx.tick;
        ctx.tick = ctx.tick.wrapping_add(1);
        tick.is_multiple_of(every)
    }

    /// Open a span. The returned guard records the interval when it
    /// drops; `None` means the span was sampled out. Drop the guard on
    /// the thread that opened it (it is `!Send`, so the compiler holds
    /// you to that).
    pub fn span(&self, label: &'static str, arg: u64) -> Option<SpanGuard> {
        self.with_ctx(|ctx| {
            if !self.sampled(ctx) {
                return None;
            }
            let id = self.next_span.fetch_add(1, Ordering::Relaxed);
            let parent = ctx.stack.last().copied().unwrap_or(0);
            ctx.stack.push(id);
            Some(SpanGuard {
                ring: Arc::clone(&ctx.ring),
                tracer_id: self.tracer_id,
                epoch: self.epoch,
                id,
                parent,
                label,
                arg,
                start_ns: self.now_ns(),
                _not_send: std::marker::PhantomData,
            })
        })
    }

    /// Record an instant event under the currently open span.
    pub fn event(&self, label: &'static str, arg: u64) {
        self.with_ctx(|ctx| {
            if !self.sampled(ctx) {
                return;
            }
            let now = self.now_ns();
            let record = SpanRecord {
                id: self.next_span.fetch_add(1, Ordering::Relaxed),
                parent: ctx.stack.last().copied().unwrap_or(0),
                label,
                start_ns: now,
                end_ns: now,
                thread: ctx.ring.thread,
                arg,
                is_event: true,
            };
            ctx.ring.push(record);
        });
    }

    /// Move every completed record out of every thread's ring. Each
    /// record is returned by exactly one drain (rings are emptied under
    /// their mutex); spans still open stay with their guard and appear
    /// in a later drain.
    pub fn drain(&self) -> TraceDrain {
        let rings: Vec<Arc<ThreadRing>> = self
            .rings
            .lock()
            .expect("ring directory poisoned")
            .iter()
            .map(Arc::clone)
            .collect();
        let mut out = TraceDrain::default();
        for ring in rings {
            let mut state = ring.state.lock().expect("span ring poisoned");
            out.records.extend(state.records.drain(..));
            out.dropped += std::mem::take(&mut state.dropped);
        }
        out.records.sort_by_key(|r| (r.start_ns, r.id));
        out
    }
}

/// RAII guard for an open span (see [`Tracer::span`]).
#[must_use = "a span guard records its interval when dropped"]
pub struct SpanGuard {
    ring: Arc<ThreadRing>,
    tracer_id: usize,
    epoch: Instant,
    id: u64,
    parent: u64,
    label: &'static str,
    arg: u64,
    start_ns: u64,
    /// The open-span stack is thread-local; keep the guard on its
    /// opening thread.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let end_ns = self.epoch.elapsed().as_nanos() as u64;
        self.ring.push(SpanRecord {
            id: self.id,
            parent: self.parent,
            label: self.label,
            start_ns: self.start_ns,
            end_ns: end_ns.max(self.start_ns),
            thread: self.ring.thread,
            arg: self.arg,
            is_event: false,
        });
        THREAD_CTXS.with(|ctxs| {
            let mut ctxs = ctxs.borrow_mut();
            if let Some(ctx) = ctxs.iter_mut().find(|c| c.tracer_id == self.tracer_id) {
                match ctx.stack.last() {
                    Some(&top) if top == self.id => {
                        ctx.stack.pop();
                    }
                    // Out-of-order drop (guards held across each other):
                    // surgically remove this id, keep the rest nested.
                    _ => ctx.stack.retain(|&open| open != self.id),
                }
            }
        });
    }
}

/// Check that a drained record set is well-formed: ids unique, every
/// interval non-negative, and every non-root span contained in a parent
/// on the same thread. Meaningful on drains with `dropped == 0` and all
/// guards closed (a dropped or still-open parent is reported as
/// missing).
pub fn validate(records: &[SpanRecord]) -> Result<(), String> {
    use std::collections::HashMap;
    let mut by_id: HashMap<u64, &SpanRecord> = HashMap::with_capacity(records.len());
    for r in records {
        if r.id == 0 {
            return Err(format!("span {:?} uses the reserved id 0", r.label));
        }
        if r.end_ns < r.start_ns {
            return Err(format!("span {} ({}) ends before it starts", r.id, r.label));
        }
        if by_id.insert(r.id, r).is_some() {
            return Err(format!("span id {} appears twice", r.id));
        }
    }
    for r in records {
        if r.parent == 0 {
            continue;
        }
        let Some(p) = by_id.get(&r.parent) else {
            return Err(format!(
                "span {} ({}) references missing parent {}",
                r.id, r.label, r.parent
            ));
        };
        if p.thread != r.thread {
            return Err(format!(
                "span {} ({}) is parented across threads ({} vs {})",
                r.id, r.label, r.thread, p.thread
            ));
        }
        if p.start_ns > r.start_ns || p.end_ns < r.end_ns {
            return Err(format!(
                "span {} ({}) [{}, {}] escapes parent {} [{}, {}]",
                r.id, r.label, r.start_ns, r.end_ns, p.id, p.start_ns, p.end_ns
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_validate() {
        let t = Tracer::new(128);
        {
            let _outer = t.span("outer", 1);
            t.event("ping", 9);
            {
                let _inner = t.span("inner", 2);
            }
        }
        let drain = t.drain();
        assert_eq!(drain.dropped, 0);
        assert_eq!(drain.records.len(), 3);
        validate(&drain.records).expect("well-nested");
        let outer = drain
            .records
            .iter()
            .find(|r| r.label == "outer")
            .expect("outer recorded");
        let inner = drain
            .records
            .iter()
            .find(|r| r.label == "inner")
            .expect("inner recorded");
        let ping = drain
            .records
            .iter()
            .find(|r| r.label == "ping")
            .expect("event recorded");
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.parent, outer.id);
        assert_eq!(ping.parent, outer.id);
        assert!(ping.is_event && ping.start_ns == ping.end_ns);
        assert!(outer.start_ns <= inner.start_ns && outer.end_ns >= inner.end_ns);
    }

    #[test]
    fn drain_is_move_not_copy() {
        let t = Tracer::new(128);
        {
            let _s = t.span("once", 0);
        }
        assert_eq!(t.drain().records.len(), 1);
        assert_eq!(t.drain().records.len(), 0, "second drain finds nothing");
    }

    #[test]
    fn open_spans_stay_with_their_guard() {
        let t = Tracer::new(128);
        let open = t.span("open", 0);
        {
            let _closed = t.span("closed", 0);
        }
        let first = t.drain();
        assert_eq!(first.records.len(), 1);
        assert_eq!(first.records[0].label, "closed");
        drop(open);
        let second = t.drain();
        assert_eq!(second.records.len(), 1);
        assert_eq!(second.records[0].label, "open");
    }

    #[test]
    fn full_ring_drops_oldest_and_counts() {
        let t = Tracer::new(4);
        for i in 0..7u64 {
            let _s = t.span("s", i);
        }
        let drain = t.drain();
        assert_eq!(drain.records.len(), 4);
        assert_eq!(drain.dropped, 3);
        let args: Vec<u64> = drain.records.iter().map(|r| r.arg).collect();
        assert_eq!(args, vec![3, 4, 5, 6], "oldest records were evicted");
    }

    #[test]
    fn sampling_thins_spans() {
        let t = Tracer::new(128);
        t.set_sample_every(2);
        for i in 0..10u64 {
            let _s = t.span("s", i);
        }
        assert_eq!(t.drain().records.len(), 5);
        t.set_sample_every(0);
        for _ in 0..10 {
            let _s = t.span("s", 0);
        }
        assert_eq!(t.drain().records.len(), 0, "0 disables recording");
    }

    #[test]
    fn cross_thread_records_share_one_id_space() {
        let t = std::sync::Arc::new(Tracer::new(128));
        let mut handles = Vec::new();
        for k in 0..4u64 {
            let t = std::sync::Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                let _s = t.span("worker", k);
            }));
        }
        for h in handles {
            h.join().expect("worker panicked");
        }
        let drain = t.drain();
        assert_eq!(drain.records.len(), 4);
        validate(&drain.records).expect("distinct threads, distinct roots");
        let mut ids: Vec<u64> = drain.records.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4, "ids unique across threads");
        let mut threads: Vec<u64> = drain.records.iter().map(|r| r.thread).collect();
        threads.sort_unstable();
        threads.dedup();
        assert_eq!(threads.len(), 4, "each thread got its own ring");
    }

    #[test]
    fn validate_rejects_duplicates_and_orphans() {
        let r1 = SpanRecord {
            id: 1,
            parent: 0,
            label: "a",
            start_ns: 0,
            end_ns: 10,
            thread: 0,
            arg: 0,
            is_event: false,
        };
        let dup = vec![r1.clone(), r1.clone()];
        assert!(validate(&dup).is_err());
        let orphan = vec![SpanRecord {
            id: 2,
            parent: 99,
            ..r1.clone()
        }];
        assert!(validate(&orphan).is_err());
        let escapes = vec![
            r1.clone(),
            SpanRecord {
                id: 3,
                parent: 1,
                start_ns: 5,
                end_ns: 20,
                ..r1
            },
        ];
        assert!(validate(&escapes).is_err());
    }
}
