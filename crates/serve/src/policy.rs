//! [`ServePolicy`]: a device scheduler wired to the resident service.
//!
//! `PooledCapmanPolicy` already speaks `CalibrationBackend`, so wiring
//! a device to the service needs no scheduler changes — this adapter
//! does the coercion once and adds the one thing the raw seam cannot:
//! **tenant-side telemetry into the service's own registry**. The
//! pool's instrumentation goes through the feature-gated global obs
//! hooks; the service's registry is a local value that is always on,
//! so a `/metrics` scrape of the service must include what its tenants
//! experienced (request→adoption staleness), not only what the broker
//! did. [`ServePolicy`] observes each drained calibration sample into
//! `serve_adopt_staleness_s` before passing it through to the normal
//! telemetry channel — nothing is consumed, only witnessed.
//!
//! Fleet runs don't need this type: `DeviceArena`/`FleetRunner` accept
//! the service directly as their backend (that is how the soak harness
//! drives overload). `ServePolicy` is the single-device integration
//! path and the template for out-of-tree tenants.

use std::sync::Arc;

use capman_battery::chemistry::Class;
use capman_core::online::CalibratorSpec;
use capman_core::policy::{DecisionContext, Observation, Policy};
use capman_core::telemetry::CalibrationSample;
use capman_fleet::{CalibrationBackend, PooledCapmanPolicy};
use capman_obs::Histogram;

use crate::service::CalibrationService;

const ADOPT_STALENESS_BOUNDS: [f64; 11] = [
    0.1, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0, 600.0,
];

/// A CAPMAN device scheduler whose calibrations are brokered by a
/// [`CalibrationService`], reporting adoption staleness into the
/// service's registry.
pub struct ServePolicy {
    inner: PooledCapmanPolicy,
    adopt_staleness: Arc<Histogram>,
}

impl ServePolicy {
    /// A scheduler for one device of `cohort`, submitting through
    /// `service` on the cadence of `spec`.
    pub fn new(
        service: Arc<CalibrationService>,
        cohort: usize,
        spec: CalibratorSpec,
        compute_speed: f64,
    ) -> Self {
        let adopt_staleness = service.registry().histogram(
            "serve_adopt_staleness_s",
            "Simulated seconds between a tenant device's request and its adoption",
            &ADOPT_STALENESS_BOUNDS,
        );
        let backend: Arc<dyn CalibrationBackend> = service;
        ServePolicy {
            inner: PooledCapmanPolicy::with_backend(backend, cohort, spec, compute_speed),
            adopt_staleness,
        }
    }

    /// Snapshot sequence number the device currently decides from.
    pub fn seen_seq(&self) -> u64 {
        self.inner.seen_seq()
    }
}

impl Policy for ServePolicy {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn observe(&mut self, obs: &Observation) {
        self.inner.observe(obs);
    }

    fn decide(&mut self, ctx: &DecisionContext<'_>) -> Class {
        self.inner.decide(ctx)
    }

    fn overhead_us(&self) -> f64 {
        self.inner.overhead_us()
    }

    fn recalibrations(&self) -> u64 {
        self.inner.recalibrations()
    }

    fn drain_calibrations(&mut self) -> Vec<CalibrationSample> {
        let samples = self.inner.drain_calibrations();
        for sample in &samples {
            self.adopt_staleness.observe(sample.staleness_s);
        }
        samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::AdmissionConfig;
    use crate::service::ServiceConfig;
    use capman_device::fsm::Action;
    use capman_device::states::DeviceState;

    fn ctx(time_s: f64) -> DecisionContext<'static> {
        DecisionContext {
            time_s,
            state: DeviceState::awake(),
            actions: &[],
            last_power_w: 0.8,
            big_soc: 0.9,
            little_soc: 0.9,
            big_head: 0.9,
            little_head: 0.9,
            big_usable: true,
            little_usable: true,
            dual: true,
            tec_on: false,
            hotspot_c: 35.0,
        }
    }

    fn warmed(policy: &mut ServePolicy) {
        let awake = DeviceState::awake();
        let asleep = DeviceState::asleep();
        for i in 0..40 {
            let power = 1.0 + (i % 5) as f64 * 0.5;
            policy.observe(&Observation {
                time_s: i as f64,
                prev_state: asleep,
                action: Action::ScreenOn,
                new_state: awake,
                reward: 0.9,
                power_w: power,
            });
            policy.observe(&Observation {
                time_s: i as f64,
                prev_state: awake,
                action: Action::ScreenOff,
                new_state: asleep,
                reward: 0.9,
                power_w: 0.2,
            });
        }
    }

    #[test]
    fn adoption_staleness_lands_in_the_service_registry() {
        let service = Arc::new(CalibrationService::new(
            &[CalibratorSpec::paper()],
            ServiceConfig {
                admission: AdmissionConfig::default(),
                ..ServiceConfig::default()
            },
        ));
        let mut policy = ServePolicy::new(Arc::clone(&service), 0, CalibratorSpec::paper(), 1.0);
        warmed(&mut policy);
        let _ = policy.decide(&ctx(1200.0));
        assert_eq!(policy.recalibrations(), 0, "solve not yet run");
        assert_eq!(service.run_pending(1200.0), 1, "manual service: we pump it");
        let _ = policy.decide(&ctx(1205.0));
        assert_eq!(policy.recalibrations(), 1);
        assert_eq!(policy.seen_seq(), 1);
        let samples = policy.drain_calibrations();
        assert_eq!(samples.len(), 1, "samples pass through to telemetry");
        let snap = service.registry().snapshot();
        let hist = snap
            .histograms
            .iter()
            .find(|h| h.name == "serve_adopt_staleness_s")
            .expect("tenant histogram registered in the service registry");
        assert_eq!(hist.count, 1);
        assert!(
            (hist.sum - 5.0).abs() < 1e-9,
            "staleness measured request (1200 s) to adoption (1205 s)"
        );
        assert_eq!(policy.name(), "CAPMAN");
        assert_eq!(policy.overhead_us(), 0.0);
    }
}
