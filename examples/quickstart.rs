//! Quickstart: one discharge cycle, CAPMAN vs the original phone.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the paper's big.LITTLE prototype pack, runs the short-video
//! workload under the CAPMAN scheduler and under the single-battery
//! *Practice* baseline, and prints the service-time comparison.

use capman::core::config::SimConfig;
use capman::core::experiments::{run_policy_with, PolicyKind};
use capman::device::phone::PhoneProfile;
use capman::workload::WorkloadKind;

fn main() {
    let horizon = 30_000.0;
    let seed = 7;
    println!("CAPMAN quickstart: Video workload on a Nexus, one discharge cycle\n");

    let mut outcomes = Vec::new();
    for kind in [PolicyKind::Capman, PolicyKind::Practice] {
        let config = SimConfig {
            max_horizon_s: horizon,
            tec_enabled: kind.has_tec(),
            ..SimConfig::paper()
        };
        let outcome = run_policy_with(
            kind,
            WorkloadKind::Video,
            PhoneProfile::nexus(),
            seed,
            config,
        );
        println!(
            "{:<9} service {:>7.0} s | delivered {:>7.0} J | switches {:>5} | peak spot {:>5.1} C | end {:?}",
            outcome.policy,
            outcome.service_time_s,
            outcome.energy_delivered_j,
            outcome.switches,
            outcome.max_hotspot_c,
            outcome.end_reason,
        );
        outcomes.push(outcome);
    }

    let gain = outcomes[0].service_gain_pct(&outcomes[1]);
    println!(
        "\nCAPMAN extends the discharge cycle by {gain:+.1}% over the original phone \
         (the paper reports up to +114% under skewed loads)."
    );
}
