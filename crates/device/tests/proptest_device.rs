//! Property-based invariants for the device substrate.

use proptest::prelude::*;

use capman_device::constants;
use capman_device::fsm::Action;
use capman_device::power::{Demand, PowerModel};
use capman_device::states::{DeviceState, STATE_COUNT};

fn arb_state() -> impl Strategy<Value = DeviceState> {
    (0..STATE_COUNT).prop_map(DeviceState::from_index)
}

fn arb_action() -> impl Strategy<Value = Action> {
    (0..Action::ALL.len()).prop_map(|i| Action::ALL[i])
}

fn arb_demand() -> impl Strategy<Value = Demand> {
    (0.0f64..=100.0, 0usize..16, 0.0f64..=255.0, 0.0f64..500.0).prop_map(
        |(cpu_util, freq_index, brightness, packet_rate)| Demand {
            cpu_util,
            freq_index,
            brightness,
            packet_rate,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// State indexing is a bijection over the whole product space.
    #[test]
    fn state_index_roundtrip(state in arb_state()) {
        prop_assert_eq!(DeviceState::from_index(state.index()), state);
        prop_assert!(state.index() < STATE_COUNT);
    }

    /// The transition function is closed over the state space and
    /// deterministic.
    #[test]
    fn transitions_are_closed_and_deterministic(state in arb_state(), action in arb_action()) {
        let a = state.apply(action);
        let b = state.apply(action);
        prop_assert_eq!(a, b);
        prop_assert!(a.index() < STATE_COUNT);
    }

    /// Battery-switch actions commute with everything except the battery
    /// field.
    #[test]
    fn switch_actions_touch_only_battery(state in arb_state()) {
        let s = state.apply(Action::SwitchToLittle);
        prop_assert_eq!(s.cpu, state.cpu);
        prop_assert_eq!(s.screen, state.screen);
        prop_assert_eq!(s.wifi, state.wifi);
        prop_assert_eq!(s.tec, state.tec);
    }

    /// Device power is positive, finite, and bounded by the sum of the
    /// components' maxima.
    #[test]
    fn power_is_positive_and_bounded(state in arb_state(), demand in arb_demand()) {
        let model = PowerModel::calibrated(8, 1.0);
        let p = model.device_power_mw(&state, &demand);
        prop_assert!(p.is_finite());
        prop_assert!(p > 0.0, "even a suspended phone draws floor power");
        // Generous ceiling: every component at its highest regime.
        let ceiling = constants::CPU_C0_MW
            + constants::SCREEN_ON_MW * 1.6
            + constants::WIFI_SEND_MW * 4.0
            + constants::TEC_ON_MW;
        prop_assert!(p <= ceiling, "power {p} exceeds ceiling {ceiling}");
    }

    /// More utilisation never reduces CPU power at a fixed frequency.
    #[test]
    fn cpu_power_monotone_in_util(
        freq in 0usize..8,
        u1 in 0.0f64..=100.0,
        u2 in 0.0f64..=100.0,
    ) {
        use capman_device::states::CpuState;
        let model = PowerModel::calibrated(8, 1.0);
        let at = |u: f64| model.cpu().power_mw(CpuState::C0, &Demand {
            cpu_util: u,
            freq_index: freq,
            ..Demand::default()
        });
        let (lo, hi) = if u1 <= u2 { (u1, u2) } else { (u2, u1) };
        prop_assert!(at(lo) <= at(hi) + 1e-12);
    }

    /// Suspend always reaches the canonical asleep core state (battery
    /// and TEC are orthogonal concerns).
    #[test]
    fn suspend_reaches_sleep(state in arb_state()) {
        let s = state.apply(Action::Suspend);
        prop_assert!(s.is_suspended());
        use capman_device::states::WifiState;
        prop_assert_eq!(s.wifi, WifiState::Idle);
    }
}
