//! Fig. 6 bench: the TEC delta-T-vs-current curve.
//!
//! Times the Eq. (1) evaluation across the 0–2.2 A sweep and checks the
//! peak sits at the rated current.

use criterion::{criterion_group, criterion_main, Criterion};

use capman_thermal::tec::Tec;

fn sweep(tec: &Tec) -> (f64, f64) {
    let mut best = (0.0, f64::NEG_INFINITY);
    for i in 0..=220 {
        let current = f64::from(i) * 0.01;
        let dt = tec.delta_t_steady(current);
        if dt > best.1 {
            best = (current, dt);
        }
    }
    best
}

fn bench_fig6(c: &mut Criterion) {
    let tec = Tec::ate31();
    c.bench_function("fig6/delta_t_sweep", |b| b.iter(|| sweep(&tec)));

    let (peak_i, peak_dt) = sweep(&tec);
    println!(
        "\nfig6: peak dT = {:.2} K at {:.2} A (rated {:.2} A)",
        peak_dt,
        peak_i,
        tec.rated_current_a()
    );
    assert!((peak_i - tec.rated_current_a()).abs() < 0.02);
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
