//! The finite Markov decision process `M = {S, A, T, R}`.
//!
//! States and actions are dense indices; the transition function `T` and
//! reward function `R` are stored per `(state, action)` pair as a sparse
//! list of `(successor, probability, reward)` entries, with rewards
//! normalised to `[0, 1]` as in the paper.

use serde::{Deserialize, Serialize};

/// One probabilistic outcome of taking an action.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Outcome {
    /// Successor state index.
    pub next: usize,
    /// Transition probability.
    pub prob: f64,
    /// Reward in `[0, 1]`.
    pub reward: f64,
}

/// A finite MDP with dense state/action indices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mdp {
    n_states: usize,
    n_actions: usize,
    /// `outcomes[s][a]` — empty when action `a` is unavailable in `s`.
    outcomes: Vec<Vec<Vec<Outcome>>>,
}

impl Mdp {
    /// Number of states `|S|`.
    pub fn n_states(&self) -> usize {
        self.n_states
    }

    /// Number of actions `|A|`.
    pub fn n_actions(&self) -> usize {
        self.n_actions
    }

    /// The outcomes of taking `action` in `state` (empty if unavailable).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn outcomes(&self, state: usize, action: usize) -> &[Outcome] {
        assert!(state < self.n_states, "state out of range");
        assert!(action < self.n_actions, "action out of range");
        &self.outcomes[state][action]
    }

    /// Actions available in `state`.
    pub fn available_actions(&self, state: usize) -> impl Iterator<Item = usize> + '_ {
        assert!(state < self.n_states, "state out of range");
        (0..self.n_actions).filter(move |&a| !self.outcomes[state][a].is_empty())
    }

    /// A state with no available actions is *absorbing* (the paper's
    /// target states for battery scheduling).
    pub fn is_absorbing(&self, state: usize) -> bool {
        self.available_actions(state).next().is_none()
    }

    /// Expected immediate reward of `(state, action)`.
    pub fn expected_reward(&self, state: usize, action: usize) -> f64 {
        self.outcomes(state, action)
            .iter()
            .map(|o| o.prob * o.reward)
            .sum()
    }

    /// Total number of `(state, action)` pairs with outcomes — the number
    /// of action nodes in the graph representation.
    pub fn n_action_nodes(&self) -> usize {
        (0..self.n_states)
            .map(|s| self.available_actions(s).count())
            .sum()
    }
}

/// A validating builder for [`Mdp`].
#[derive(Debug, Clone)]
pub struct MdpBuilder {
    n_states: usize,
    n_actions: usize,
    outcomes: Vec<Vec<Vec<Outcome>>>,
}

impl MdpBuilder {
    /// Start a builder for `n_states` states and `n_actions` actions.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn new(n_states: usize, n_actions: usize) -> Self {
        assert!(n_states > 0, "need at least one state");
        assert!(n_actions > 0, "need at least one action");
        MdpBuilder {
            n_states,
            n_actions,
            outcomes: vec![vec![Vec::new(); n_actions]; n_states],
        }
    }

    /// Add an outcome: taking `action` in `state` reaches `next` with
    /// weight `prob` (a probability or a raw visit count — weights are
    /// normalised per `(state, action)` at [`build`](MdpBuilder::build))
    /// and reward `reward`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range, `prob` is not positive and
    /// finite, or `reward` is not in `[0, 1]`.
    pub fn transition(
        &mut self,
        state: usize,
        action: usize,
        next: usize,
        prob: f64,
        reward: f64,
    ) -> &mut Self {
        assert!(state < self.n_states, "state out of range");
        assert!(action < self.n_actions, "action out of range");
        assert!(next < self.n_states, "successor out of range");
        assert!(
            prob > 0.0 && prob.is_finite(),
            "probability/count weight must be positive and finite"
        );
        assert!(
            (0.0..=1.0).contains(&reward),
            "reward must be normalised to [0, 1]"
        );
        self.outcomes[state][action].push(Outcome { next, prob, reward });
        self
    }

    /// Finish the MDP.
    ///
    /// Outcome probabilities of each `(state, action)` are normalised to
    /// sum to one, so callers may supply raw visit counts (this is how the
    /// profiler feeds observed transition statistics in).
    pub fn build(mut self) -> Mdp {
        for per_state in &mut self.outcomes {
            for outs in per_state {
                let total: f64 = outs.iter().map(|o| o.prob).sum();
                if total > 0.0 {
                    for o in outs.iter_mut() {
                        o.prob /= total;
                    }
                }
            }
        }
        Mdp {
            n_states: self.n_states,
            n_actions: self.n_actions,
            outcomes: self.outcomes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> Mdp {
        // 0 --a0--> 1 --a0--> 2 (absorbing)
        let mut b = MdpBuilder::new(3, 2);
        b.transition(0, 0, 1, 1.0, 0.5);
        b.transition(1, 0, 2, 1.0, 1.0);
        b.build()
    }

    #[test]
    fn absorbing_detection() {
        let m = chain();
        assert!(!m.is_absorbing(0));
        assert!(!m.is_absorbing(1));
        assert!(m.is_absorbing(2));
    }

    #[test]
    fn available_actions_are_sparse() {
        let m = chain();
        assert_eq!(m.available_actions(0).collect::<Vec<_>>(), vec![0]);
        assert_eq!(m.available_actions(2).count(), 0);
    }

    #[test]
    fn probabilities_are_normalised_from_counts() {
        let mut b = MdpBuilder::new(2, 1);
        // Raw counts: 3 visits to state 0, 1 to state 1.
        b.transition(0, 0, 0, 0.75, 0.0);
        b.transition(0, 0, 1, 0.25, 1.0);
        let m = b.build();
        let total: f64 = m.outcomes(0, 0).iter().map(|o| o.prob).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expected_reward_weighs_probabilities() {
        let mut b = MdpBuilder::new(2, 1);
        b.transition(0, 0, 0, 0.5, 0.0);
        b.transition(0, 0, 1, 0.5, 1.0);
        let m = b.build();
        assert!((m.expected_reward(0, 0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn action_node_count() {
        assert_eq!(chain().n_action_nodes(), 2);
    }

    #[test]
    #[should_panic(expected = "reward")]
    fn rejects_unnormalised_reward() {
        let mut b = MdpBuilder::new(2, 1);
        b.transition(0, 0, 1, 1.0, 2.0);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_zero_probability() {
        let mut b = MdpBuilder::new(2, 1);
        b.transition(0, 0, 1, 0.0, 0.5);
    }
}
