//! Earth Mover's Distance via successive shortest paths (SSP).
//!
//! Algorithm 1 measures how differently two action nodes distribute
//! probability over state nodes, using the state-similarity matrix as the
//! ground distance. Following the paper (and its citation of Jewell's
//! optimal-flow formulation), the transportation problem is solved with a
//! successive-shortest-path min-cost flow using Dijkstra over reduced
//! costs (Johnson potentials).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Result of an EMD computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmdResult {
    /// The Earth Mover's Distance (total transport cost).
    pub distance: f64,
    /// Number of augmenting paths used (the SSP iteration count).
    pub augmentations: usize,
}

#[derive(Debug, Clone)]
struct Edge {
    to: usize,
    cap: f64,
    cost: f64,
    /// Index of the reverse edge in `graph[to]`.
    rev: usize,
}

/// A small successive-shortest-path min-cost-flow solver.
#[derive(Debug, Clone)]
struct MinCostFlow {
    graph: Vec<Vec<Edge>>,
}

impl MinCostFlow {
    fn new(n: usize) -> Self {
        MinCostFlow {
            graph: vec![Vec::new(); n],
        }
    }

    fn add_edge(&mut self, from: usize, to: usize, cap: f64, cost: f64) {
        let rev_from = self.graph[to].len();
        let rev_to = self.graph[from].len();
        self.graph[from].push(Edge {
            to,
            cap,
            cost,
            rev: rev_from,
        });
        self.graph[to].push(Edge {
            to: from,
            cap: 0.0,
            cost: -cost,
            rev: rev_to,
        });
    }

    /// Push `target_flow` from `s` to `t`; returns (cost, augmentations).
    fn solve(&mut self, s: usize, t: usize, target_flow: f64) -> (f64, usize) {
        const EPS: f64 = 1e-12;
        let n = self.graph.len();
        let mut potential = vec![0.0_f64; n];
        let mut total_cost = 0.0;
        let mut remaining = target_flow;
        let mut augmentations = 0;

        while remaining > EPS {
            // Dijkstra over reduced costs.
            let mut dist = vec![f64::INFINITY; n];
            let mut prev: Vec<Option<(usize, usize)>> = vec![None; n];
            dist[s] = 0.0;
            let mut heap: BinaryHeap<Reverse<(OrderedF64, usize)>> = BinaryHeap::new();
            heap.push(Reverse((OrderedF64(0.0), s)));
            while let Some(Reverse((OrderedF64(d), u))) = heap.pop() {
                if d > dist[u] + EPS {
                    continue;
                }
                for (ei, e) in self.graph[u].iter().enumerate() {
                    if e.cap <= EPS {
                        continue;
                    }
                    let nd = d + e.cost + potential[u] - potential[e.to];
                    if nd + EPS < dist[e.to] {
                        dist[e.to] = nd;
                        prev[e.to] = Some((u, ei));
                        heap.push(Reverse((OrderedF64(nd), e.to)));
                    }
                }
            }
            if !dist[t].is_finite() {
                break; // no more augmenting paths
            }
            for v in 0..n {
                if dist[v].is_finite() {
                    potential[v] += dist[v];
                }
            }
            // Find the bottleneck along the path.
            let mut bottleneck = remaining;
            let mut v = t;
            while let Some((u, ei)) = prev[v] {
                bottleneck = bottleneck.min(self.graph[u][ei].cap);
                v = u;
            }
            // Apply the flow.
            let mut v = t;
            while let Some((u, ei)) = prev[v] {
                let rev = self.graph[u][ei].rev;
                self.graph[u][ei].cap -= bottleneck;
                total_cost += bottleneck * self.graph[u][ei].cost;
                self.graph[v][rev].cap += bottleneck;
                v = u;
            }
            remaining -= bottleneck;
            augmentations += 1;
        }
        (total_cost, augmentations)
    }
}

/// Total-order wrapper for finite `f64` keys in the Dijkstra heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrderedF64(f64);

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Cheap lower/upper bounds on [`emd`], used by the similarity engine to
/// skip exact solves whose outcome is already decided.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmdBounds {
    /// No transport plan can cost less than this.
    pub lower: f64,
    /// Some feasible transport plan costs at most this.
    pub upper: f64,
}

/// Lower and upper bounds on the EMD without solving the flow problem.
///
/// After normalisation, at least the total-variation mass
/// `tv = sum_i max(p_i - q_i, 0)` must move between distinct indices, so
/// `tv` times the smallest cross-support ground distance is a lower
/// bound. Keeping the overlap `min(p_i, q_i)` in place and shipping the
/// excess to the deficits along the most expensive excess-to-deficit
/// pair is feasible, giving the upper bound. Both bounds are valid for
/// any non-negative ground distance; no metric assumptions are made.
///
/// # Panics
///
/// See [`emd`].
pub fn emd_bounds(p: &[f64], q: &[f64], dist: impl Fn(usize, usize) -> f64) -> EmdBounds {
    let supp_p: Vec<usize> = (0..p.len()).filter(|&i| p[i] > 0.0).collect();
    let supp_q: Vec<usize> = (0..q.len()).filter(|&j| q[j] > 0.0).collect();
    emd_bounds_on_support(p, q, &supp_p, &supp_q, dist)
}

/// Like [`emd_bounds`], with the support index sets precomputed by the
/// caller (the engine computes them once per graph, not once per pair).
///
/// `supp_p` / `supp_q` must list exactly the indices with positive mass.
///
/// # Panics
///
/// See [`emd`].
pub fn emd_bounds_on_support(
    p: &[f64],
    q: &[f64],
    supp_p: &[usize],
    supp_q: &[usize],
    dist: impl Fn(usize, usize) -> f64,
) -> EmdBounds {
    assert_eq!(p.len(), q.len(), "distributions must share an index space");
    let sum_p: f64 = supp_p.iter().map(|&i| p[i]).sum();
    let sum_q: f64 = supp_q.iter().map(|&j| q[j]).sum();
    if sum_p <= 0.0 || sum_q <= 0.0 {
        return EmdBounds {
            lower: 0.0,
            upper: 0.0,
        };
    }

    // Total variation distance and the cost of leaving the overlap in
    // place (free when the ground distance vanishes on the diagonal).
    let mut tv = 0.0;
    let mut diag_cost = 0.0;
    for &i in supp_p {
        let pn = p[i] / sum_p;
        let qn = q[i] / sum_q;
        tv += (pn - qn).max(0.0);
        if qn > 0.0 {
            let d = dist(i, i);
            assert!(d >= 0.0, "ground distance must be non-negative");
            diag_cost += pn.min(qn) * d;
        }
    }

    // Lower bound: tv mass must cross between distinct indices, each
    // step costing at least the cheapest cross-support distance.
    let mut min_cross = f64::INFINITY;
    // Upper bound: ship the excess to the deficits; no pairing costs
    // more than the dearest excess-to-deficit distance.
    let mut max_move = 0.0_f64;
    for &i in supp_p {
        let excess = p[i] / sum_p - q[i] / sum_q;
        for &j in supp_q {
            if i == j {
                continue;
            }
            let d = dist(i, j);
            assert!(d >= 0.0, "ground distance must be non-negative");
            if d < min_cross {
                min_cross = d;
            }
            if excess > 0.0 && q[j] / sum_q > p[j] / sum_p && d > max_move {
                max_move = d;
            }
        }
    }
    if !min_cross.is_finite() {
        min_cross = 0.0;
    }
    EmdBounds {
        lower: tv * min_cross,
        upper: diag_cost + tv * max_move,
    }
}

/// The Earth Mover's Distance between two distributions over the same
/// index space, with `dist(i, j)` as the ground distance.
///
/// Both inputs are normalised internally, so raw weights are accepted.
/// Returns zero when either distribution has no mass.
///
/// # Panics
///
/// Panics if the slices have different lengths, contain negative mass, or
/// if any ground distance is negative.
pub fn emd(p: &[f64], q: &[f64], dist: impl Fn(usize, usize) -> f64) -> f64 {
    emd_detailed(p, q, dist).distance
}

/// Like [`emd`], also reporting the SSP augmentation count.
///
/// # Panics
///
/// See [`emd`].
pub fn emd_detailed(p: &[f64], q: &[f64], dist: impl Fn(usize, usize) -> f64) -> EmdResult {
    assert_eq!(p.len(), q.len(), "distributions must share an index space");
    assert!(
        p.iter().chain(q.iter()).all(|&x| x >= 0.0),
        "mass must be non-negative"
    );
    let sum_p: f64 = p.iter().sum();
    let sum_q: f64 = q.iter().sum();
    if sum_p <= 0.0 || sum_q <= 0.0 {
        return EmdResult {
            distance: 0.0,
            augmentations: 0,
        };
    }

    let sources: Vec<usize> = (0..p.len()).filter(|&i| p[i] > 0.0).collect();
    let sinks: Vec<usize> = (0..q.len()).filter(|&j| q[j] > 0.0).collect();
    let m = sources.len();
    let k = sinks.len();
    // Node layout: 0 = super source, 1..=m sources, m+1..=m+k sinks,
    // m+k+1 = super sink.
    let s = 0;
    let t = m + k + 1;
    let mut flow = MinCostFlow::new(t + 1);
    for (si, &i) in sources.iter().enumerate() {
        flow.add_edge(s, 1 + si, p[i] / sum_p, 0.0);
    }
    for (sj, &j) in sinks.iter().enumerate() {
        flow.add_edge(1 + m + sj, t, q[j] / sum_q, 0.0);
    }
    for (si, &i) in sources.iter().enumerate() {
        for (sj, &j) in sinks.iter().enumerate() {
            let d = dist(i, j);
            assert!(d >= 0.0, "ground distance must be non-negative");
            flow.add_edge(1 + si, 1 + m + sj, f64::INFINITY, d);
        }
    }
    let (cost, augmentations) = flow.solve(s, t, 1.0);
    EmdResult {
        distance: cost.max(0.0),
        augmentations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l1(i: usize, j: usize) -> f64 {
        (i as f64 - j as f64).abs()
    }

    #[test]
    fn identical_distributions_have_zero_distance() {
        let p = [0.2, 0.5, 0.3];
        assert!(emd(&p, &p, l1) < 1e-12);
    }

    #[test]
    fn point_masses_pay_the_ground_distance() {
        let p = [1.0, 0.0, 0.0, 0.0];
        let q = [0.0, 0.0, 0.0, 1.0];
        assert!((emd(&p, &q, l1) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn split_mass_transports_optimally() {
        // Move 0.5 from 0 to 1 (cost 0.5) and keep 0.5 in place.
        let p = [1.0, 0.0];
        let q = [0.5, 0.5];
        assert!((emd(&p, &q, l1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn emd_is_symmetric() {
        let p = [0.7, 0.1, 0.2];
        let q = [0.1, 0.6, 0.3];
        let a = emd(&p, &q, l1);
        let b = emd(&q, &p, l1);
        assert!((a - b).abs() < 1e-10);
    }

    #[test]
    fn triangle_inequality_holds_on_samples() {
        let dists = [
            vec![0.3, 0.3, 0.4],
            vec![0.8, 0.1, 0.1],
            vec![0.2, 0.2, 0.6],
        ];
        for a in &dists {
            for b in &dists {
                for c in &dists {
                    let ab = emd(a, b, l1);
                    let bc = emd(b, c, l1);
                    let ac = emd(a, c, l1);
                    assert!(ac <= ab + bc + 1e-9);
                }
            }
        }
    }

    #[test]
    fn raw_weights_are_normalised() {
        let p = [2.0, 0.0];
        let q = [0.0, 6.0];
        assert!((emd(&p, &q, l1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_distribution_gives_zero() {
        let p = [0.0, 0.0];
        let q = [0.5, 0.5];
        assert_eq!(emd(&p, &q, l1), 0.0);
    }

    #[test]
    fn bounded_by_max_ground_distance() {
        let p = [0.25, 0.25, 0.25, 0.25];
        let q = [0.1, 0.2, 0.3, 0.4];
        let d = emd(&p, &q, |i, j| if i == j { 0.0 } else { 1.0 });
        assert!(d <= 1.0 + 1e-12);
        assert!(d >= 0.0);
    }

    #[test]
    fn augmentation_count_is_reported() {
        let p = [1.0, 0.0, 0.0, 0.0];
        let q = [0.0, 0.0, 0.0, 1.0];
        let r = emd_detailed(&p, &q, l1);
        assert!(r.augmentations >= 1);
    }

    #[test]
    fn uses_cheaper_indirect_reallocations() {
        // Ground distance where direct transport is expensive but the
        // optimal plan must still be found: 2 sources, 2 sinks.
        let p = [0.5, 0.5, 0.0, 0.0];
        let q = [0.0, 0.0, 0.5, 0.5];
        // d(0,2)=1, d(0,3)=10, d(1,2)=10, d(1,3)=1 -> optimal pairs.
        let d = |i: usize, j: usize| -> f64 {
            match (i, j) {
                (0, 2) | (1, 3) => 1.0,
                _ => 10.0,
            }
        };
        assert!((emd(&p, &q, d) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bounds_bracket_exact_distance() {
        let cases: [(&[f64], &[f64]); 4] = [
            (&[0.2, 0.5, 0.3], &[0.1, 0.6, 0.3]),
            (&[1.0, 0.0, 0.0, 0.0], &[0.0, 0.0, 0.0, 1.0]),
            (&[0.5, 0.5, 0.0], &[0.0, 0.5, 0.5]),
            (&[2.0, 0.0, 1.0], &[0.0, 6.0, 0.0]),
        ];
        for (p, q) in cases {
            let exact = emd(p, q, l1);
            let b = emd_bounds(p, q, l1);
            assert!(
                b.lower <= exact + 1e-12 && exact <= b.upper + 1e-12,
                "bounds [{}, {}] must bracket {exact}",
                b.lower,
                b.upper
            );
        }
    }

    #[test]
    fn bounds_are_tight_for_point_masses() {
        let p = [1.0, 0.0, 0.0, 0.0];
        let q = [0.0, 0.0, 0.0, 1.0];
        let b = emd_bounds(&p, &q, l1);
        assert!((b.lower - 3.0).abs() < 1e-12);
        assert!((b.upper - 3.0).abs() < 1e-12);
    }

    #[test]
    fn bounds_collapse_for_identical_distributions() {
        let p = [0.2, 0.5, 0.3];
        let b = emd_bounds(&p, &p, l1);
        assert_eq!(b.lower, 0.0);
        assert!(b.upper < 1e-12);
    }

    #[test]
    fn bounds_handle_empty_distributions() {
        let b = emd_bounds(&[0.0, 0.0], &[0.5, 0.5], l1);
        assert_eq!(b.lower, 0.0);
        assert_eq!(b.upper, 0.0);
    }

    #[test]
    #[should_panic(expected = "index space")]
    fn rejects_mismatched_lengths() {
        let _ = emd(&[1.0], &[0.5, 0.5], l1);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_mass() {
        let _ = emd(&[-0.1, 1.1], &[0.5, 0.5], l1);
    }
}
