//! `any::<T>()` for the primitive types the tests use.

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;
    /// The full-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-domain strategy for one primitive type.
#[derive(Debug, Clone, Copy)]
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

macro_rules! arbitrary_primitive {
    ($($t:ty => |$rng:ident| $gen:expr;)*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn new_value(&self, $rng: &mut TestRng) -> $t {
                $gen
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(std::marker::PhantomData)
            }
        }
    )*};
}

arbitrary_primitive! {
    bool => |rng| rng.gen::<bool>();
    u8 => |rng| rng.gen::<u8>();
    u16 => |rng| rng.gen::<u16>();
    u32 => |rng| rng.gen::<u32>();
    u64 => |rng| rng.gen::<u64>();
    usize => |rng| rng.gen::<usize>();
    i8 => |rng| rng.gen::<i8>();
    i16 => |rng| rng.gen::<i16>();
    i32 => |rng| rng.gen::<i32>();
    i64 => |rng| rng.gen::<i64>();
    f64 => |rng| rng.gen::<f64>();
    f32 => |rng| rng.gen::<f32>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::new_case_rng;

    #[test]
    fn any_bool_yields_both_values() {
        let mut rng = new_case_rng(0);
        let s = any::<bool>();
        let mut saw = [false; 2];
        for _ in 0..100 {
            saw[usize::from(s.new_value(&mut rng))] = true;
        }
        assert!(saw[0] && saw[1]);
    }
}
