//! Streaming trace generation for fleet-scale simulation.
//!
//! A materialized [`Trace`] costs one `Segment` (plus its action `Vec`)
//! per behaviour stretch — ~150 heap allocations for a 1500 s workload.
//! At a million devices that dominates peak RSS, so the fleet arena
//! drives simulations from a [`TraceCursor`] instead: the per-device
//! state is just the seeded generator RNG plus a small sliding window of
//! upcoming segments, refilled on the fly per tick-window and evicted
//! once the simulation clock passes them.
//!
//! Because the cursor feeds the *same* generator emission sequence that
//! [`crate::generate`] drives into a `TraceBuilder`, and the per-device
//! [`Perturbation`] scales demand segment-locally, streamed segments are
//! **bit-identical** to the materialized
//! [`generate_perturbed`](crate::generate_perturbed) trace — the
//! property the arena-vs-legacy fleet equivalence tests pin down.
//!
//! [`TraceSource`] abstracts over both representations so the simulator
//! core is agnostic: `Trace` answers window queries from its full
//! segment list, `TraceCursor` from its sliding window. Both assume the
//! monotonically advancing query times of a forward simulation.

use capman_device::fsm::Action;
use capman_device::power::Demand;

use crate::generators::{SegmentSink, WorkloadGen, WorkloadKind};
use crate::perturb::Perturbation;
use crate::trace::{Segment, Trace};

/// Compact the cursor's window buffer once this many segments have been
/// evicted (amortizes the memmove).
const COMPACT_THRESHOLD: usize = 64;

/// A supplier of trace segments for a forward simulation.
///
/// Query times must be monotonically non-decreasing across calls: a
/// streaming source is allowed to discard segments that end at or before
/// the latest window start.
pub trait TraceSource {
    /// The workload label (used in outcome reporting).
    fn label(&self) -> &str;

    /// All segments whose start lies in `[t0, t1)` — the simulator fires
    /// their boundary actions during the step covering that window.
    fn segments_in(&mut self, t0: f64, t1: f64) -> &[Segment];

    /// Demand of the segment active at `t`, clamped to the final segment
    /// past the horizon.
    fn demand_at(&mut self, t: f64) -> Demand;
}

impl TraceSource for Trace {
    fn label(&self) -> &str {
        self.name()
    }

    fn segments_in(&mut self, t0: f64, t1: f64) -> &[Segment] {
        self.segments_starting_in(t0, t1)
    }

    fn demand_at(&mut self, t: f64) -> Demand {
        self.at(t).demand
    }
}

/// The cursor's sliding window: generated-but-not-yet-passed segments,
/// with the per-device perturbation applied inline at push time.
#[derive(Debug, Clone)]
struct WindowBuf {
    segments: Vec<Segment>,
    /// Index of the first live (non-evicted) segment.
    head: usize,
    /// Generation cursor: end time of the last generated segment.
    cursor_s: f64,
    perturbation: Perturbation,
}

impl WindowBuf {
    /// Drop segments that ended at or before `t0`, always keeping at
    /// least one so past-horizon demand lookups can clamp to the final
    /// segment exactly like [`Trace::at`].
    fn evict_before(&mut self, t0: f64) {
        while self.head + 1 < self.segments.len() && self.segments[self.head].end_s() <= t0 {
            self.head += 1;
        }
        if self.head >= COMPACT_THRESHOLD {
            self.segments.drain(..self.head);
            self.head = 0;
        }
    }

    fn live(&self) -> &[Segment] {
        &self.segments[self.head..]
    }
}

impl SegmentSink for WindowBuf {
    fn push_segment(&mut self, duration_s: f64, demand: Demand, actions: Vec<Action>) {
        assert!(duration_s > 0.0, "duration must be positive");
        // Mirror `Perturbation::apply`: the identity short-circuits, any
        // other perturbation scales demand segment-locally.
        let demand = if self.perturbation.is_identity() {
            demand
        } else {
            self.perturbation.apply_demand(demand)
        };
        self.segments.push(Segment {
            start_s: self.cursor_s,
            duration_s,
            demand,
            actions,
        });
        self.cursor_s += duration_s;
    }
}

/// A lazily generated, perturbed workload trace: the fleet arena's
/// per-device replacement for a materialized [`Trace`].
///
/// Holds the seeded generator (RNG counter) plus a sliding window of
/// segments; memory is bounded by the window span, not the horizon.
#[derive(Debug, Clone)]
pub struct TraceCursor {
    gen: WorkloadGen,
    horizon_s: f64,
    label: String,
    buf: WindowBuf,
    /// True once generation reached the horizon (the batch generator's
    /// loop exit condition).
    exhausted: bool,
}

impl TraceCursor {
    /// Start a streaming trace with the same parameters
    /// [`generate_perturbed`](crate::generate_perturbed) takes.
    ///
    /// # Panics
    ///
    /// Panics if `horizon_s` is not positive, `eta > 100`, or a toggle
    /// period is under 2 s.
    pub fn new(kind: WorkloadKind, horizon_s: f64, seed: u64, perturbation: Perturbation) -> Self {
        assert!(horizon_s > 0.0, "horizon must be positive");
        TraceCursor {
            gen: WorkloadGen::new(kind, seed),
            horizon_s,
            label: kind.label(),
            buf: WindowBuf {
                segments: Vec::new(),
                head: 0,
                cursor_s: 0.0,
                perturbation,
            },
            exhausted: false,
        }
    }

    /// Emit one generator burst and flip to exhausted once the batch
    /// loop's exit condition (`cursor >= horizon`) is reached.
    fn emit_one(&mut self) {
        self.gen.emit(&mut self.buf);
        if self.buf.cursor_s >= self.horizon_s {
            self.exhausted = true;
        }
    }

    /// Number of segments currently buffered (live window plus
    /// not-yet-compacted evictions) — a memory-bound diagnostic.
    pub fn buffered_segments(&self) -> usize {
        self.buf.segments.len()
    }
}

impl TraceSource for TraceCursor {
    fn label(&self) -> &str {
        &self.label
    }

    fn segments_in(&mut self, t0: f64, t1: f64) -> &[Segment] {
        // A new segment would start at the generation cursor, so the
        // window is complete once the cursor reaches `t1`.
        while !self.exhausted && self.buf.cursor_s < t1 {
            self.emit_one();
        }
        self.buf.evict_before(t0);
        let live = self.buf.live();
        let lo = live.partition_point(|s| s.start_s < t0);
        let hi = live.partition_point(|s| s.start_s < t1);
        &live[lo..hi]
    }

    fn demand_at(&mut self, t: f64) -> Demand {
        // The segment containing `t` must end strictly after it.
        while !self.exhausted && self.buf.cursor_s <= t {
            self.emit_one();
        }
        let live = self.buf.live();
        debug_assert!(!live.is_empty(), "demand_at before any segment exists");
        let idx = live.partition_point(|s| s.end_s() <= t).min(live.len() - 1);
        live[idx].demand
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perturb::generate_perturbed;

    fn kinds() -> Vec<WorkloadKind> {
        let mut v = WorkloadKind::fig12().to_vec();
        v.push(WorkloadKind::IdleOn);
        v.push(WorkloadKind::Toggle { period_s: 60 });
        v
    }

    #[test]
    fn cursor_windows_reconstruct_the_batch_trace_bitwise() {
        for kind in kinds() {
            for dt in [1.0, 7.3] {
                let pert = Perturbation::sampled(5, 0.15);
                let batch = generate_perturbed(kind, 900.0, 42, pert);
                let mut cur = TraceCursor::new(kind, 900.0, 42, pert);
                let mut got: Vec<Segment> = Vec::new();
                let mut t = 0.0;
                // A generator burst can overshoot the horizon by a few
                // segments, so sweep far enough to collect the full set.
                while t < 900.0 + 120.0 {
                    got.extend(cur.segments_in(t, t + dt).iter().cloned());
                    t += dt;
                }
                assert_eq!(
                    batch.segments(),
                    &got[..],
                    "{kind:?} dt={dt}: streamed segments must be bit-identical"
                );
            }
        }
    }

    #[test]
    fn cursor_demand_matches_batch_lookup_bitwise() {
        for kind in kinds() {
            let pert = Perturbation::sampled(11, 0.15);
            let batch = generate_perturbed(kind, 600.0, 9, pert);
            let mut cur = TraceCursor::new(kind, 600.0, 9, pert);
            let mut t = 0.0;
            while t < 650.0 {
                // Interleave window queries the way the simulator does.
                let _ = cur.segments_in(t, t + 1.0);
                assert_eq!(
                    cur.demand_at(t),
                    batch.at(t).demand,
                    "{kind:?} t={t}: demand lookups must agree"
                );
                t += 1.0;
            }
        }
    }

    #[test]
    fn identity_perturbation_matches_plain_generate() {
        let batch = crate::generate(WorkloadKind::Pcmark, 500.0, 3);
        let mut cur = TraceCursor::new(WorkloadKind::Pcmark, 500.0, 3, Perturbation::identity());
        let mut got: Vec<Segment> = Vec::new();
        let mut t = 0.0;
        while t < 500.0 + 120.0 {
            got.extend(cur.segments_in(t, t + 5.0).iter().cloned());
            t += 5.0;
        }
        assert_eq!(batch.segments(), &got[..]);
    }

    #[test]
    fn window_memory_stays_bounded() {
        let mut cur = TraceCursor::new(
            WorkloadKind::Toggle { period_s: 4 },
            100_000.0,
            1,
            Perturbation::identity(),
        );
        let mut t = 0.0;
        while t < 100_000.0 {
            let _ = cur.segments_in(t, t + 1.0);
            assert!(
                cur.buffered_segments() <= 2 * COMPACT_THRESHOLD + 8,
                "buffer grew to {} segments at t={t}",
                cur.buffered_segments()
            );
            t += 1.0;
        }
    }

    #[test]
    fn label_matches_kind() {
        let cur = TraceCursor::new(WorkloadKind::Video, 10.0, 0, Perturbation::identity());
        assert_eq!(cur.label(), WorkloadKind::Video.label());
    }
}
