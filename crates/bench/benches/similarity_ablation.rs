//! Ablation: structural-similarity reuse vs plain value iteration.
//!
//! DESIGN.md calls out the paper's core algorithmic claim: computing
//! structural similarities once and reusing decisions for similar states
//! is cheaper than re-solving the MDP per decision. This bench measures
//! (a) one similarity calibration, (b) one full value-iteration solve,
//! and (c) a cached abstraction lookup — the operation CAPMAN performs
//! on the hot decision path.

use criterion::{criterion_group, criterion_main, Criterion};

use capman_mdp::abstraction::Abstraction;
use capman_mdp::graph::MdpGraph;
use capman_mdp::mdp::{Mdp, MdpBuilder};
use capman_mdp::similarity::{structural_similarity, SimilarityParams};
use capman_mdp::value_iteration::solve;

/// A layered random-ish MDP shaped like the profiled device MDP
/// (~50 live states, a handful of actions each).
fn device_like_mdp() -> Mdp {
    let n = 48;
    let mut b = MdpBuilder::new(n, 6);
    for s in 0..(n - 4) {
        for a in 0..3 {
            // Deterministic-ish structure with two successors.
            let n1 = (s * 7 + a * 11 + 1) % n;
            let n2 = (s * 13 + a * 5 + 3) % n;
            let r = ((s + a) % 10) as f64 / 10.0;
            b.transition(s, a, n1, 0.7, r);
            b.transition(s, a, n2, 0.3, (r + 0.2).min(1.0));
        }
    }
    b.build()
}

fn bench_similarity_ablation(c: &mut Criterion) {
    let mdp = device_like_mdp();
    let graph = MdpGraph::from_mdp(&mdp);
    let params = SimilarityParams {
        tolerance: 1e-3,
        max_iterations: 60,
        ..SimilarityParams::paper(0.05)
    };

    c.bench_function("similarity_ablation/algorithm1", |b| {
        b.iter(|| structural_similarity(&graph, &params))
    });
    c.bench_function("similarity_ablation/value_iteration", |b| {
        b.iter(|| solve(&mdp, 0.05, 1e-6))
    });

    let sim = structural_similarity(&graph, &params);
    let abstraction = Abstraction::from_similarity(&sim.sigma_s, 0.1);
    c.bench_function("similarity_ablation/cached_lookup", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for s in 0..48 {
                acc += abstraction.representative(s);
            }
            acc
        })
    });

    println!(
        "\nsimilarity_ablation: {} states -> {} clusters (theta 0.1), {} iterations",
        abstraction.n_states(),
        abstraction.n_clusters(),
        sim.iterations
    );
}

criterion_group!(benches, bench_similarity_ablation);
criterion_main!(benches);
