//! Exporters: Chrome `trace_event` JSON for span drains, Prometheus
//! text format and a flat JSON snapshot for the metrics registry.
//!
//! All three are hand-written strings (the vendored serde stand-in has
//! no format backend). The JSON snapshot deliberately mirrors the
//! `BENCH_*.json` shape — one named section holding an array of flat
//! `"key": number` objects — so `capman_bench::perf_report::parse_rows`
//! reads it without a real JSON parser.

use std::fmt::Write as _;

use crate::metrics::MetricsSnapshot;
use crate::trace::TraceDrain;

/// Escape a string for a JSON literal. Metric names and span labels are
/// ASCII identifiers in practice; this keeps the exporters honest if one
/// ever is not.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A JSON-safe float: finite values as written, non-finite as 0 (JSON
/// has no NaN/Inf literal).
fn json_f64(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

/// Render a span drain as Chrome `trace_event` JSON (the format
/// `chrome://tracing` and <https://ui.perfetto.dev> open directly).
/// Spans become `ph:"X"` complete events, instants become `ph:"i"`;
/// timestamps are microseconds since the tracer epoch, one `tid` per
/// recording thread.
pub fn chrome_trace(drain: &TraceDrain) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"displayTimeUnit\": \"ms\",\n");
    let _ = writeln!(out, "  \"droppedSpans\": {},", drain.dropped);
    out.push_str("  \"traceEvents\": [\n");
    for (i, r) in drain.records.iter().enumerate() {
        let ts_us = r.start_ns as f64 / 1e3;
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"cat\": \"obs\", \"ph\": \"{}\", \"ts\": {:.3}, ",
            json_escape(r.label),
            if r.is_event { "i" } else { "X" },
            ts_us
        );
        if r.is_event {
            out.push_str("\"s\": \"t\", ");
        } else {
            let _ = write!(
                out,
                "\"dur\": {:.3}, ",
                (r.end_ns - r.start_ns) as f64 / 1e3
            );
        }
        let _ = write!(
            out,
            "\"pid\": 1, \"tid\": {}, \"args\": {{\"span_id\": {}, \"parent\": {}, \"arg\": {}}}}}",
            r.thread, r.id, r.parent, r.arg
        );
        out.push_str(if i + 1 < drain.records.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Render a metrics snapshot in Prometheus text exposition format:
/// `# HELP` / `# TYPE` per family, cumulative `le`-labelled buckets plus
/// `_sum` / `_count` for histograms.
pub fn prometheus_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, help, value) in &snap.counters {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, help, value) in &snap.gauges {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {value}");
    }
    for h in &snap.histograms {
        let _ = writeln!(out, "# HELP {} {}", h.name, h.help);
        let _ = writeln!(out, "# TYPE {} histogram", h.name);
        let mut cumulative = 0u64;
        for (bound, count) in h.bounds.iter().zip(&h.counts) {
            cumulative += count;
            let _ = writeln!(out, "{}_bucket{{le=\"{}\"}} {}", h.name, bound, cumulative);
        }
        let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", h.name, h.count);
        let _ = writeln!(out, "{}_sum {}", h.name, json_f64(h.sum));
        let _ = writeln!(out, "{}_count {}", h.name, h.count);
    }
    out
}

/// Bucket-resolution quantile from snapshot counts, matching
/// `Histogram::quantile` (0.0 when empty, upper bound of the holding
/// bucket, largest finite bound for `+Inf`).
fn snapshot_quantile(bounds: &[f64], counts: &[u64], q: f64) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 || bounds.is_empty() {
        return 0.0;
    }
    let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
    let mut seen = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return bounds
                .get(i)
                .copied()
                .unwrap_or_else(|| *bounds.last().expect("bounds checked non-empty"));
        }
    }
    *bounds.last().expect("bounds checked non-empty")
}

/// Render a metrics snapshot as flat JSON: a single `"metrics"` section
/// holding one row of `"key": number` pairs — counters and gauges by
/// name, histograms flattened to `<name>_count` / `<name>_sum` /
/// `<name>_p50` / `<name>_p95` / `<name>_p99`. Parseable with
/// `perf_report::parse_rows(json, "metrics")`, so `perf_gate` can
/// consume registry output like any other bench report.
pub fn metrics_json(snap: &MetricsSnapshot) -> String {
    let mut pairs: Vec<(String, String)> = Vec::new();
    for (name, _, value) in &snap.counters {
        pairs.push((name.clone(), value.to_string()));
    }
    for (name, _, value) in &snap.gauges {
        pairs.push((name.clone(), value.to_string()));
    }
    for h in &snap.histograms {
        pairs.push((format!("{}_count", h.name), h.count.to_string()));
        pairs.push((format!("{}_sum", h.name), format!("{:.4}", json_f64(h.sum))));
        for (suffix, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
            pairs.push((
                format!("{}_{suffix}", h.name),
                format!(
                    "{:.4}",
                    json_f64(snapshot_quantile(&h.bounds, &h.counts, q))
                ),
            ));
        }
    }
    let mut out = String::new();
    out.push_str("{\n  \"generated_by\": \"capman-obs\",\n  \"metrics\": [\n    {\n");
    for (i, (key, value)) in pairs.iter().enumerate() {
        let _ = write!(out, "      \"{}\": {}", json_escape(key), value);
        out.push_str(if i + 1 < pairs.len() { ",\n" } else { "\n" });
    }
    out.push_str("    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;
    use crate::trace::Tracer;

    fn balanced(json: &str) {
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn chrome_trace_renders_spans_and_events() {
        let t = Tracer::new(64);
        {
            let _outer = t.span("solve", 3);
            t.event("publish", 7);
        }
        let json = chrome_trace(&t.drain());
        balanced(&json);
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"name\": \"solve\""));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"name\": \"publish\""));
        assert!(json.contains("\"ph\": \"i\""));
        assert!(json.contains("\"droppedSpans\": 0"));
        assert!(!json.contains("NaN") && !json.contains("inf"));
    }

    #[test]
    fn chrome_trace_of_empty_drain_is_well_formed() {
        let t = Tracer::new(64);
        let json = chrome_trace(&t.drain());
        balanced(&json);
        assert!(json.contains("\"traceEvents\": [\n  ]"));
    }

    #[test]
    fn prometheus_text_has_cumulative_buckets() {
        let r = Registry::new();
        r.counter("solves_total", "Solves").add(4);
        r.gauge("queue_depth", "Depth").set(2);
        let h = r.histogram("lat_ms", "Latency", &[1.0, 10.0]);
        h.observe(0.5);
        h.observe(5.0);
        h.observe(50.0);
        let text = prometheus_text(&r.snapshot());
        assert!(text.contains("# TYPE solves_total counter"));
        assert!(text.contains("solves_total 4"));
        assert!(text.contains("# TYPE queue_depth gauge"));
        assert!(text.contains("queue_depth 2"));
        assert!(text.contains("lat_ms_bucket{le=\"1\"} 1"));
        assert!(
            text.contains("lat_ms_bucket{le=\"10\"} 2"),
            "buckets cumulate"
        );
        assert!(text.contains("lat_ms_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("lat_ms_count 3"));
        assert!(text.contains("lat_ms_sum 55.5"));
    }

    #[test]
    fn metrics_json_flattens_histograms() {
        let r = Registry::new();
        r.counter("hits_total", "Hits").add(9);
        let h = r.histogram("stale_s", "Staleness", &[0.1, 1.0, 10.0]);
        for _ in 0..99 {
            h.observe(0.05);
        }
        h.observe(5.0);
        let json = metrics_json(&r.snapshot());
        balanced(&json);
        assert!(json.contains("\"metrics\": ["));
        assert!(json.contains("\"hits_total\": 9"));
        assert!(json.contains("\"stale_s_count\": 100"));
        assert!(json.contains("\"stale_s_p50\": 0.1000"));
        assert!(json.contains("\"stale_s_p99\": 0.1000"));
    }

    #[test]
    fn empty_snapshot_exports_are_valid() {
        let snap = Registry::new().snapshot();
        assert_eq!(prometheus_text(&snap), "");
        balanced(&metrics_json(&snap));
    }

    #[test]
    fn snapshot_quantile_matches_live_histogram() {
        let r = Registry::new();
        let h = r.histogram("q", "Q", &[1.0, 2.0, 4.0]);
        for v in [0.5, 1.5, 1.6, 3.0, 9.0] {
            h.observe(v);
        }
        let snap = r.snapshot();
        let hs = &snap.histograms[0];
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(
                snapshot_quantile(&hs.bounds, &hs.counts, q),
                h.quantile(q),
                "q = {q}"
            );
        }
        assert_eq!(snapshot_quantile(&[1.0], &[0, 0], 0.5), 0.0);
    }
}
