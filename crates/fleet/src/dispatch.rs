//! Static policy dispatch for the fleet hot loop.
//!
//! The single-device front door boxes its policy (`Box<dyn Policy>`),
//! which is fine once per run but not once per device at fleet scale: a
//! million-device run would make a million short-lived heap allocations
//! just to pick a scheduler variant. [`FleetPolicy`] is the closed enum
//! over every policy a [`FleetProfile`](crate::profile::FleetProfile)
//! can name; a shard owns exactly one slot of it and re-initialises the
//! slot in place for each device, so the hot loop performs zero policy
//! allocations (the variants themselves own only inline state or
//! `Arc`-shared references).
//!
//! Dispatch is a match instead of a vtable call; decisions are the same
//! code as the boxed path, so results are bit-identical.

use std::sync::Arc;

use capman_battery::chemistry::Class;
use capman_core::baselines::{DualPolicy, HeuristicPolicy, PracticePolicy};
use capman_core::capman::CapmanPolicy;
use capman_core::experiments::PolicyKind;
use capman_core::oracle::OraclePolicy;
use capman_core::policy::{DecisionContext, Observation, Policy};
use capman_core::telemetry::CalibrationSample;
use capman_workload::Trace;

use crate::policy::PooledCapmanPolicy;
use crate::pool::CalibrationBackend;
use crate::profile::{DeviceSpec, FleetProfile};

/// One device's scheduling policy, enum-dispatched.
///
/// Built per device with [`FleetPolicy::for_device`]; a shard keeps one
/// slot and overwrites it in place between devices.
//
// The variants deliberately sit inline: boxing the big one (CAPMAN's
// inline calibrator, ~800 B) would put a heap allocation back into the
// per-device hot path the enum exists to remove, and the value lives in
// a dense arena column sized by `shard_devices`, where ~1 KiB rows are
// the budgeted cost.
#[allow(clippy::large_enum_variant)]
pub enum FleetPolicy {
    /// Inline-calibrating CAPMAN (the single-device seed behaviour).
    Capman(CapmanPolicy),
    /// CAPMAN delegating calibration to the shared background pool.
    Pooled(PooledCapmanPolicy),
    /// The clairvoyant offline baseline (owns its trace copy).
    Oracle(OraclePolicy),
    /// Single stock battery, no scheduling.
    Practice(PracticePolicy),
    /// big.LITTLE, LITTLE first.
    Dual(DualPolicy),
    /// Reactive utilisation prediction.
    Heuristic(HeuristicPolicy),
}

impl FleetPolicy {
    /// A cheap initial slot value (overwritten before the first device).
    pub fn placeholder() -> Self {
        FleetPolicy::Practice(PracticePolicy)
    }

    /// Fresh policy state for one device of `profile`.
    ///
    /// CAPMAN cohorts go through the pool when one is supplied and
    /// calibrate inline otherwise. `oracle_trace` is only invoked for
    /// Oracle cohorts — the clairvoyant baseline is the one policy that
    /// must own a materialized copy of the device's trace, so streaming
    /// callers only pay for materialization where it is semantically
    /// required.
    pub fn for_device(
        profile: &FleetProfile,
        spec: &DeviceSpec,
        backend: Option<&Arc<dyn CalibrationBackend>>,
        oracle_trace: impl FnOnce() -> Trace,
    ) -> Self {
        match (profile.kind, backend) {
            (PolicyKind::Capman, Some(backend)) => {
                FleetPolicy::Pooled(PooledCapmanPolicy::with_backend(
                    Arc::clone(backend),
                    spec.cohort,
                    profile.calibrator,
                    profile.phone.compute_speed,
                ))
            }
            (PolicyKind::Capman, None) => FleetPolicy::Capman(CapmanPolicy::with_calibrator(
                profile.phone.compute_speed,
                profile.calibrator.build(),
            )),
            (PolicyKind::Oracle, _) => FleetPolicy::Oracle(OraclePolicy::new(
                oracle_trace(),
                profile.phone.power_model(),
            )),
            (PolicyKind::Practice, _) => FleetPolicy::Practice(PracticePolicy),
            (PolicyKind::Dual, _) => FleetPolicy::Dual(DualPolicy),
            (PolicyKind::Heuristic, _) => FleetPolicy::Heuristic(HeuristicPolicy::new()),
        }
    }
}

macro_rules! dispatch {
    ($self:expr, $p:ident => $body:expr) => {
        match $self {
            FleetPolicy::Capman($p) => $body,
            FleetPolicy::Pooled($p) => $body,
            FleetPolicy::Oracle($p) => $body,
            FleetPolicy::Practice($p) => $body,
            FleetPolicy::Dual($p) => $body,
            FleetPolicy::Heuristic($p) => $body,
        }
    };
}

impl Policy for FleetPolicy {
    fn name(&self) -> &'static str {
        dispatch!(self, p => p.name())
    }

    fn observe(&mut self, obs: &Observation) {
        dispatch!(self, p => p.observe(obs))
    }

    fn decide(&mut self, ctx: &DecisionContext<'_>) -> Class {
        dispatch!(self, p => p.decide(ctx))
    }

    fn overhead_us(&self) -> f64 {
        dispatch!(self, p => p.overhead_us())
    }

    fn recalibrations(&self) -> u64 {
        dispatch!(self, p => p.recalibrations())
    }

    fn drain_calibrations(&mut self) -> Vec<CalibrationSample> {
        dispatch!(self, p => p.drain_calibrations())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capman_core::experiments::build_policy;
    use capman_workload::{generate, WorkloadKind};

    #[test]
    fn enum_names_match_the_boxed_policies() {
        let trace = generate(WorkloadKind::Video, 600.0, 1);
        for kind in PolicyKind::ALL {
            let mut profile = crate::profile::FleetProfile::capman("t", WorkloadKind::Video, 1);
            profile.kind = kind;
            profile.config.max_horizon_s = 600.0;
            let spec = profile.device(0, 0);
            let enum_policy = FleetPolicy::for_device(&profile, &spec, None, || trace.clone());
            let boxed = build_policy(kind, &trace, &profile.phone);
            assert_eq!(enum_policy.name(), boxed.name(), "{kind:?}");
        }
    }

    #[test]
    fn placeholder_is_inert() {
        let p = FleetPolicy::placeholder();
        assert_eq!(p.recalibrations(), 0);
        assert_eq!(p.overhead_us(), 0.0);
    }
}
