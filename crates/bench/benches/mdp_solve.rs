//! Bellman-solver scaling: the pre-CSR nested-Vec Gauss–Seidel sweep
//! against the flat CSR solver (serial and parallel schedules) on
//! device-like discharge graphs.
//!
//! The fixtures (see `capman_bench::mdp_fixtures`) keep the two layouts
//! sweep-identical — forward edges plus self-loops make the in-place
//! Gauss–Seidel sweep arithmetically equal to a Jacobi sweep — so the
//! measured ratio isolates the storage layout: contiguous outcome arena
//! and packed action lists versus per-pair heap vectors and the O(|A|)
//! `available_actions` filter scan. The one-shot summary at the end
//! checks this PR's acceptance bar: the CSR solver at least 3x faster
//! than the nested baseline on a >= 512-state device graph. The check
//! runs on the 1024-state fixture: at exactly 512 states the nested
//! layout still fits the last-level cache on small machines and its
//! wall time flaps run-to-run, while at 1024 states the ratio is
//! stable (the 512 row is still reported for the trend).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use capman_bench::mdp_fixtures::{build_csr, build_nested, device_like_transitions};
use capman_mdp::reference::solve_nested;
use capman_mdp::value_iteration::{solve, solve_with_mode};
use capman_mdp::ExecutionMode;

const RHO: f64 = 0.95;
const EPS: f64 = 1e-9;

fn bench_mdp_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("mdp_solve");
    group.sample_size(10);
    for n_states in [128usize, 512, 1024] {
        let txs = device_like_transitions(n_states, 42);
        let nested = build_nested(n_states, &txs);
        let csr = build_csr(n_states, &txs);
        group.bench_with_input(BenchmarkId::new("nested", n_states), &nested, |b, m| {
            b.iter(|| solve_nested(m, RHO, EPS))
        });
        group.bench_with_input(BenchmarkId::new("csr_serial", n_states), &csr, |b, m| {
            b.iter(|| solve_with_mode(m, RHO, EPS, ExecutionMode::Serial))
        });
        group.bench_with_input(BenchmarkId::new("csr_parallel", n_states), &csr, |b, m| {
            b.iter(|| solve_with_mode(m, RHO, EPS, ExecutionMode::Parallel))
        });
    }
    group.finish();

    // One-shot acceptance summary.
    println!("\nmdp_solve: one-shot wall times (best of 3)");
    println!(
        "{:>7} {:>11} {:>11} {:>11} {:>8}  check",
        "states", "nested_ms", "csr_ser_ms", "csr_par_ms", "speedup"
    );
    for n_states in [512usize, 1024] {
        let txs = device_like_transitions(n_states, 42);
        let nested = build_nested(n_states, &txs);
        let csr = build_csr(n_states, &txs);

        let once = |iters: usize, t0: Instant| -> f64 {
            assert!(iters > 0);
            t0.elapsed().as_secs_f64() * 1e3
        };
        // Interleaved best-of-3: one rep of each solver per round, so
        // machine-load spikes hit all three rather than skewing one.
        let (mut nested_ms, mut ser_ms, mut par_ms) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        for _ in 0..3 {
            let t0 = Instant::now();
            nested_ms = nested_ms.min(once(solve_nested(&nested, RHO, EPS).iterations, t0));
            let t0 = Instant::now();
            ser_ms = ser_ms.min(once(solve(&csr, RHO, EPS).iterations, t0));
            let t0 = Instant::now();
            par_ms = par_ms.min(once(
                solve_with_mode(&csr, RHO, EPS, ExecutionMode::Parallel).iterations,
                t0,
            ));
        }

        let speedup = nested_ms / ser_ms.min(par_ms);
        let check = if n_states == 1024 {
            if speedup >= 3.0 {
                "PASS (>= 3x on a >= 512-state graph)"
            } else {
                "FAIL (< 3x on a >= 512-state graph)"
            }
        } else {
            ""
        };
        println!(
            "{:>7} {:>11.3} {:>11.3} {:>11.3} {:>7.1}x  {check}",
            n_states, nested_ms, ser_ms, par_ms, speedup
        );
    }
}

criterion_group!(benches, bench_mdp_solve);
criterion_main!(benches);
