//! The action vocabulary and the power-state transition function (Fig. 7).
//!
//! In the paper, *actions* are system calls and binder messages that move
//! the device between power states (e.g. "the screen-on event wakes the
//! entire phone and begins to receive Internet data"). The raw 200+
//! system calls recorded by the profiler (see [`crate::syscall`]) are
//! classified into the semantic action classes below; the transition
//! function encodes the hardware-status edges of Fig. 7.

use serde::{Deserialize, Serialize};
use std::fmt;

use capman_battery::chemistry::Class;

use crate::states::{CpuState, DeviceState, ScreenState, TecState, WifiState};

/// Semantic action classes (system-call / binder-message categories).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Action {
    /// User lights the screen (wakes the whole phone).
    ScreenOn,
    /// Screen times out or the user locks the phone.
    ScreenOff,
    /// An application is launched (binder spawn, exec).
    AppLaunch,
    /// The foreground application exits.
    AppExit,
    /// Compute-heavy system calls keep the CPU in C0.
    CpuBusy,
    /// The scheduler idles the CPU one level.
    CpuIdle,
    /// The governor drops the CPU into deep idle.
    CpuDeepIdle,
    /// Full suspend (wakelocks released).
    Suspend,
    /// Wake from suspend (alarm, push notification).
    Wake,
    /// The radio starts receiving (low-rate regime).
    NetReceiveStart,
    /// The radio starts transmitting (high-rate regime).
    NetSendStart,
    /// Network activity stops.
    NetStop,
    /// The thermal governor boots the TEC.
    TecOn,
    /// The thermal governor drops the TEC.
    TecOff,
    /// The switch facility selects the big battery.
    SwitchToBig,
    /// The switch facility selects the LITTLE battery.
    SwitchToLittle,
    /// A timer tick with no state change.
    TimerTick,
}

impl Action {
    /// Every action class.
    pub const ALL: [Action; 17] = [
        Action::ScreenOn,
        Action::ScreenOff,
        Action::AppLaunch,
        Action::AppExit,
        Action::CpuBusy,
        Action::CpuIdle,
        Action::CpuDeepIdle,
        Action::Suspend,
        Action::Wake,
        Action::NetReceiveStart,
        Action::NetSendStart,
        Action::NetStop,
        Action::TecOn,
        Action::TecOff,
        Action::SwitchToBig,
        Action::SwitchToLittle,
        Action::TimerTick,
    ];

    /// Whether this action is a battery-switch decision (the decisions
    /// CAPMAN's MDP graph is built around).
    pub fn is_battery_switch(self) -> bool {
        matches!(self, Action::SwitchToBig | Action::SwitchToLittle)
    }

    /// Dense index for array-backed MDPs.
    pub fn index(self) -> usize {
        Action::ALL
            .iter()
            .position(|&a| a == self)
            .expect("action present in ALL")
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Error returned when parsing an unknown action name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseActionError(String);

impl fmt::Display for ParseActionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown action name: {}", self.0)
    }
}

impl std::error::Error for ParseActionError {}

impl std::str::FromStr for Action {
    type Err = ParseActionError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Action::ALL
            .iter()
            .copied()
            .find(|a| format!("{a:?}") == s)
            .ok_or_else(|| ParseActionError(s.to_string()))
    }
}

/// Apply `action` to `state` — the hardware state-transition function.
pub fn transition(state: DeviceState, action: Action) -> DeviceState {
    let mut next = state;
    match action {
        Action::ScreenOn => {
            next.screen = ScreenState::On;
            next.cpu = CpuState::C0;
        }
        Action::ScreenOff => {
            next.screen = ScreenState::Off;
            if next.cpu == CpuState::C0 {
                next.cpu = CpuState::C1;
            }
        }
        Action::AppLaunch | Action::CpuBusy => {
            next.cpu = CpuState::C0;
        }
        Action::AppExit => {
            if next.cpu == CpuState::C0 {
                next.cpu = CpuState::C1;
            }
        }
        Action::CpuIdle => {
            next.cpu = match next.cpu {
                CpuState::C0 => CpuState::C1,
                CpuState::C1 => CpuState::C2,
                other => other,
            };
        }
        Action::CpuDeepIdle => {
            if next.cpu != CpuState::Sleep {
                next.cpu = CpuState::C2;
            }
        }
        Action::Suspend => {
            next.cpu = CpuState::Sleep;
            next.screen = ScreenState::Off;
            next.wifi = WifiState::Idle;
        }
        Action::Wake => {
            if next.cpu == CpuState::Sleep {
                next.cpu = CpuState::C0;
            }
        }
        Action::NetReceiveStart => {
            next.wifi = WifiState::Access;
            next.cpu = CpuState::C0;
        }
        Action::NetSendStart => {
            next.wifi = WifiState::Send;
            next.cpu = CpuState::C0;
        }
        Action::NetStop => {
            next.wifi = WifiState::Idle;
        }
        Action::TecOn => {
            next.tec = TecState::On;
        }
        Action::TecOff => {
            next.tec = TecState::Off;
        }
        Action::SwitchToBig => {
            next.battery = Class::Big;
        }
        Action::SwitchToLittle => {
            next.battery = Class::Little;
        }
        Action::TimerTick => {}
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn screen_on_wakes_the_phone() {
        // The paper's running example: the phone wakes to receive a
        // Wikipedia update — SLEEP/OFF goes to C0/ON.
        let s = DeviceState::asleep().apply(Action::ScreenOn);
        assert_eq!(s.cpu, CpuState::C0);
        assert_eq!(s.screen, ScreenState::On);
    }

    #[test]
    fn suspend_quiesces_everything_but_battery_and_tec() {
        let mut s = DeviceState::awake();
        s.tec = TecState::On;
        let s = s.apply(Action::Suspend);
        assert!(s.is_suspended());
        assert_eq!(s.wifi, WifiState::Idle);
        assert_eq!(s.tec, TecState::On, "thermal control is independent");
    }

    #[test]
    fn cpu_idle_steps_down_one_level() {
        let s = DeviceState::awake();
        let s1 = s.apply(Action::CpuIdle);
        assert_eq!(s1.cpu, CpuState::C1);
        let s2 = s1.apply(Action::CpuIdle);
        assert_eq!(s2.cpu, CpuState::C2);
        let s3 = s2.apply(Action::CpuIdle);
        assert_eq!(s3.cpu, CpuState::C2, "idle never suspends by itself");
    }

    #[test]
    fn network_receive_wakes_cpu() {
        let s = DeviceState::asleep()
            .apply(Action::Wake)
            .apply(Action::NetReceiveStart);
        assert_eq!(s.wifi, WifiState::Access);
        assert_eq!(s.cpu, CpuState::C0);
    }

    #[test]
    fn battery_switch_changes_only_battery() {
        let s = DeviceState::awake().apply(Action::SwitchToLittle);
        assert_eq!(s.battery, Class::Little);
        assert_eq!(s.cpu, DeviceState::awake().cpu);
        let s = s.apply(Action::SwitchToBig);
        assert_eq!(s.battery, Class::Big);
    }

    #[test]
    fn timer_tick_is_identity() {
        for state in DeviceState::all() {
            assert_eq!(state.apply(Action::TimerTick), state);
        }
    }

    #[test]
    fn transitions_stay_in_the_state_space() {
        for state in DeviceState::all() {
            for &action in &Action::ALL {
                let next = state.apply(action);
                // index() panics if the state were malformed.
                let _ = next.index();
            }
        }
    }

    #[test]
    fn battery_switch_actions_are_flagged() {
        assert!(Action::SwitchToBig.is_battery_switch());
        assert!(Action::SwitchToLittle.is_battery_switch());
        assert!(!Action::ScreenOn.is_battery_switch());
    }

    #[test]
    fn action_indices_are_dense_and_unique() {
        let mut seen = vec![false; Action::ALL.len()];
        for &a in &Action::ALL {
            assert!(!seen[a.index()]);
            seen[a.index()] = true;
        }
    }

    #[test]
    fn action_names_round_trip_through_from_str() {
        for &a in &Action::ALL {
            let parsed: Action = a.to_string().parse().expect("round trip");
            assert_eq!(parsed, a);
        }
        assert!("NotAnAction".parse::<Action>().is_err());
    }

    #[test]
    fn wake_only_acts_from_sleep() {
        let awake = DeviceState::awake();
        assert_eq!(awake.apply(Action::Wake), awake);
    }
}
