//! System-level property tests: whole discharge cycles under random
//! workloads and policies keep their invariants.

use proptest::prelude::*;

use capman::core::config::SimConfig;
use capman::core::experiments::{run_policy_with, PolicyKind};
use capman::core::metrics::Outcome;
use capman::device::phone::PhoneProfile;
use capman::workload::WorkloadKind;

fn arb_policy() -> impl Strategy<Value = PolicyKind> {
    prop_oneof![
        Just(PolicyKind::Capman),
        Just(PolicyKind::Oracle),
        Just(PolicyKind::Practice),
        Just(PolicyKind::Dual),
        Just(PolicyKind::Heuristic),
    ]
}

fn arb_workload() -> impl Strategy<Value = WorkloadKind> {
    prop_oneof![
        Just(WorkloadKind::Geekbench),
        Just(WorkloadKind::Pcmark),
        Just(WorkloadKind::Video),
        (0u8..=100).prop_map(|eta| WorkloadKind::EtaStatic { eta }),
        Just(WorkloadKind::IdleOn),
    ]
}

fn short_cycle(kind: PolicyKind, workload: WorkloadKind, seed: u64) -> Outcome {
    let config = SimConfig {
        max_horizon_s: 900.0,
        tec_enabled: kind.has_tec(),
        ..SimConfig::paper()
    };
    run_policy_with(kind, workload, PhoneProfile::nexus(), seed, config)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any policy on any workload produces a physically consistent
    /// outcome.
    #[test]
    fn cycles_are_physically_consistent(
        kind in arb_policy(),
        workload in arb_workload(),
        seed in 0u64..1000,
    ) {
        let o = short_cycle(kind, workload, seed);
        prop_assert!(o.service_time_s > 0.0);
        prop_assert!(o.energy_delivered_j >= 0.0);
        prop_assert!(o.energy_heat_j >= 0.0);
        prop_assert!(o.work_served >= 0.0);
        prop_assert!(o.max_hotspot_c >= 25.0 - 1e-9);
        prop_assert!(o.max_hotspot_c < 120.0);
        prop_assert!(o.mean_hotspot_c <= o.max_hotspot_c + 1e-9);
        prop_assert!(o.big_active_s >= 0.0 && o.little_active_s >= 0.0);
        prop_assert!(o.tec_on_s <= o.service_time_s + 1.0);
    }

    /// Same seed, same policy, same workload: identical outcome
    /// (determinism of the whole pipeline).
    #[test]
    fn cycles_are_deterministic(
        kind in arb_policy(),
        workload in arb_workload(),
        seed in 0u64..1000,
    ) {
        let a = short_cycle(kind, workload, seed);
        let b = short_cycle(kind, workload, seed);
        prop_assert!((a.service_time_s - b.service_time_s).abs() < 1e-9);
        prop_assert!((a.energy_delivered_j - b.energy_delivered_j).abs() < 1e-6);
        prop_assert_eq!(a.switches, b.switches);
    }

    /// Single-battery policies never switch; dual policies never report
    /// LITTLE time on a single pack.
    #[test]
    fn practice_never_switches(workload in arb_workload(), seed in 0u64..1000) {
        let o = short_cycle(PolicyKind::Practice, workload, seed);
        prop_assert_eq!(o.switches, 0);
        prop_assert_eq!(o.little_active_s, 0.0);
    }

    /// The no-TEC baselines never energise the TEC.
    #[test]
    fn baselines_have_no_tec(workload in arb_workload(), seed in 0u64..1000) {
        for kind in [PolicyKind::Practice, PolicyKind::Dual, PolicyKind::Heuristic] {
            let o = short_cycle(kind, workload, seed);
            prop_assert_eq!(o.tec_on_s, 0.0);
            prop_assert_eq!(o.tec_energy_j, 0.0);
        }
    }
}
