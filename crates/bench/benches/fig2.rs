//! Fig. 2 bench: chemistry-vs-workload service behaviour.
//!
//! Regenerates the Fig. 2 comparison (LMO vs NCA on steady and toggling
//! workloads) at bench scale and times the underlying discharge-cycle
//! simulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use capman_battery::chemistry::Chemistry;
use capman_battery::pack::BatteryPack;
use capman_core::baselines::PracticePolicy;
use capman_core::config::SimConfig;
use capman_core::sim::Simulator;
use capman_device::phone::PhoneProfile;
use capman_workload::{generate, WorkloadKind};

fn service_time(chem: Chemistry, workload: WorkloadKind, horizon_s: f64) -> f64 {
    let config = SimConfig {
        max_horizon_s: horizon_s,
        ..SimConfig::paper()
    };
    let trace = generate(workload, horizon_s, 42);
    Simulator::new(
        PhoneProfile::nexus(),
        trace,
        BatteryPack::single(chem, 0.25), // small cell so the cycle ends in-bench
        Box::new(PracticePolicy),
        config,
    )
    .run()
    .service_time_s
}

fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2");
    group.sample_size(10);
    for workload in [
        WorkloadKind::IdleOn,
        WorkloadKind::Video,
        WorkloadKind::Toggle { period_s: 10 },
    ] {
        for chem in [Chemistry::Lmo, Chemistry::Nca] {
            group.bench_with_input(
                BenchmarkId::new(workload.label(), chem.symbol()),
                &(chem, workload),
                |b, &(chem, workload)| b.iter(|| service_time(chem, workload, 6000.0)),
            );
        }
    }
    group.finish();

    // Print the figure's data once, at bench scale.
    println!("\nfig2 (bench scale, 250 mAh cells): service seconds");
    for workload in [
        WorkloadKind::IdleOn,
        WorkloadKind::Video,
        WorkloadKind::Toggle { period_s: 10 },
    ] {
        let lmo = service_time(Chemistry::Lmo, workload, 6000.0);
        let nca = service_time(Chemistry::Nca, workload, 6000.0);
        println!(
            "  {:<16} LMO {:>7.0}  NCA {:>7.0}",
            workload.label(),
            lmo,
            nca
        );
    }
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
