//! Multi-tenant fairness and overload behaviour, end to end.
//!
//! The contract under test: load shedding concentrates on the tenant
//! causing the load, never on the quiet ones — a hot cohort hammering
//! the service costs *itself* freshness, while every cold cohort keeps
//! its one adoption per cadence window. The proptest drives random
//! traffic mixes through the admission layer directly; the soak tests
//! drive the full arena fleet against the service and check the
//! report's starvation/SLO verdicts; the golden test pins that the
//! registry scrape of a fleet-driven run is well-formed Prometheus
//! text.

use std::sync::Arc;

use capman_core::online::CalibratorSpec;
use capman_core::profiler::Profiler;
use capman_device::fsm::Action;
use capman_device::states::DeviceState;
use capman_fleet::CalibrationBackend;
use capman_obs::export::validate_prometheus;
use capman_serve::{
    run_soak, AdmissionConfig, AdmissionOutcome, CalibrationService, ServiceConfig, SloConfig,
    SoakConfig,
};
use proptest::prelude::*;

fn warm_profiler() -> Profiler {
    let mut profiler = Profiler::new();
    let awake = DeviceState::awake();
    let asleep = DeviceState::asleep();
    for i in 0..40 {
        let power = 1.0 + (i % 5) as f64 * 0.5;
        profiler.observe(asleep, Action::ScreenOn, awake, 0.9, power);
        profiler.observe(awake, Action::TimerTick, awake, 0.9, power);
        profiler.observe(awake, Action::ScreenOff, asleep, 0.9, 0.2);
    }
    profiler
}

fn service(cohorts: usize, admission: AdmissionConfig) -> CalibrationService {
    let specs: Vec<CalibratorSpec> = (0..cohorts).map(|_| CalibratorSpec::paper()).collect();
    CalibrationService::new(
        &specs,
        ServiceConfig {
            admission,
            ..ServiceConfig::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// One cohort submits `hot_factor`× more than everyone else, over
    /// random mixes of cohort count / hot index / traffic factor. The
    /// shed must land entirely on the hot cohort, and every cold
    /// cohort's adoption rate — one publication per window — must be
    /// exactly what it would be with no hot tenant at all.
    #[test]
    fn shedding_concentrates_on_the_hot_cohort(
        cohorts in 2usize..6,
        hot in 0usize..6,
        hot_factor in 5u32..15,
        windows in 2u32..4,
    ) {
        let hot = hot % cohorts;
        let window_s = 600.0;
        let svc = service(cohorts, AdmissionConfig {
            queue_bound: 64,
            quota_per_window: 1,
            window_s,
        });
        let profiler = warm_profiler();
        let mut shed_by_cohort = vec![0u64; cohorts];
        let mut pubs_before = vec![0u64; cohorts];
        for window in 0..windows {
            let t0 = window_s * f64::from(window);
            // Cold cohorts ask once per window; the hot one hammers.
            for (cohort, shed_slot) in shed_by_cohort.iter_mut().enumerate() {
                let rounds = if cohort == hot { hot_factor } else { 1 };
                for r in 0..rounds {
                    let t = t0 + f64::from(r) * window_s / f64::from(2 * hot_factor);
                    let outcome = svc.submit_request(cohort, t, &profiler, 1.0);
                    if outcome.is_shed() {
                        *shed_slot += 1;
                    }
                }
            }
            svc.run_pending(t0 + window_s * 0.9);
            for (cohort, prev_seq) in pubs_before.iter_mut().enumerate() {
                let seq = CalibrationBackend::snapshot(&svc, cohort).seq;
                let delta = seq - *prev_seq;
                *prev_seq = seq;
                prop_assert_eq!(
                    delta, 1,
                    "cohort {} must adopt exactly once in window {} (hot={}, factor={})",
                    cohort, window, hot, hot_factor
                );
            }
        }
        for (cohort, &shed) in shed_by_cohort.iter().enumerate() {
            if cohort == hot {
                prop_assert_eq!(
                    shed, u64::from(hot_factor - 1) * u64::from(windows),
                    "overload cost lands on the hot cohort alone"
                );
            } else {
                prop_assert_eq!(shed, 0, "cold cohort {} must shed nothing", cohort);
            }
        }
        let c = svc.counters();
        prop_assert_eq!(
            c.submitted,
            c.admitted + c.coalesced + c.replaced + c.shed + c.backpressure
        );
        prop_assert_eq!(c.admitted, c.completed, "everything admitted was solved");
    }
}

/// The acceptance soak: 4× overload (4 devices per cohort against a
/// quota of 1) must shed roughly (x-1)/x of submissions while every
/// cohort keeps publishing every window, with the wait p99 inside the
/// SLO objective.
#[test]
fn four_x_overload_sheds_without_starvation() {
    let config = SoakConfig {
        cohorts: 3,
        devices_per_cohort: 4,
        windows: 3,
        ..SoakConfig::default()
    };
    let report = run_soak(&config);
    assert!(
        report.starvation_free,
        "no cohort may starve under overload: {}",
        report.verdict_line()
    );
    assert!(
        report.shed_fraction > 0.3,
        "4x overload must shed a substantial fraction, got {}",
        report.verdict_line()
    );
    let c = report.counters;
    assert_eq!(
        c.submitted,
        c.admitted + c.coalesced + c.replaced + c.shed + c.backpressure,
        "admission identity"
    );
    assert_eq!(c.admitted, c.completed + c.abandoned, "solve identity");
    // Staleness of served (non-shed) work stays within the SLO
    // objective — overload costs the hot traffic freshness, not the
    // served requests latency.
    let objective = config.service.slo.spec.staleness_p99_s.objective;
    assert!(
        report.staleness_p99_s <= objective,
        "p99 wait {} s must hold the {} s objective",
        report.staleness_p99_s,
        objective
    );
    assert!(
        !report.any_breach,
        "the service absorbs 4x overload without tripping the SLO"
    );
}

/// Overload shedding must not be starvation even when the SLO monitor
/// is provoked into shedding mode: quotas collapse to 1 per window,
/// which is exactly the floor the no-starvation contract defends.
#[test]
fn shedding_mode_still_serves_every_cohort() {
    let mut service_config = ServiceConfig {
        slo: SloConfig {
            escalate_after: 1,
            ..SloConfig::default()
        },
        ..ServiceConfig::default()
    };
    // Any observed wait breaches instantly (the queue-depth gauge is
    // drained by the pump loop before each evaluation, but the wait
    // histogram remembers): the monitor is pinned in the worst mode
    // from the first window on.
    service_config.slo.spec.staleness_p99_s.objective = 0.001;
    service_config.slo.spec.staleness_p99_s.floor = 0.0;
    service_config.admission.quota_per_window = 4;
    service_config.admission.window_s = 1200.0;
    let config = SoakConfig {
        cohorts: 3,
        devices_per_cohort: 2,
        windows: 3,
        service: service_config,
        ..SoakConfig::default()
    };
    let report = run_soak(&config);
    assert!(report.any_breach, "the rigged SLO must trip");
    assert!(
        report.starvation_free,
        "shedding mode keeps the 1-per-window floor: {}",
        report.verdict_line()
    );
}

/// Golden scrape: the registry of a fleet-driven service exports
/// Prometheus text that passes the strict validator and carries the
/// whole metric family the dashboards expect.
#[test]
fn fleet_run_registry_scrape_is_valid_prometheus() {
    let report = run_soak(&SoakConfig {
        cohorts: 2,
        devices_per_cohort: 3,
        windows: 2,
        ..SoakConfig::default()
    });
    validate_prometheus(&report.prometheus)
        .unwrap_or_else(|e| panic!("scrape must validate: {e}\n{}", report.prometheus));
    for metric in [
        "serve_admitted_total",
        "serve_replaced_total",
        "serve_shed_total",
        "serve_backpressure_total",
        "serve_completed_total",
        "serve_queue_depth",
        "serve_mode",
        "serve_staleness_s_bucket",
        "serve_staleness_hot_s_bucket",
        "serve_solve_us_sum",
    ] {
        assert!(
            report.prometheus.contains(metric),
            "scrape must carry {metric}"
        );
    }
    // The Chrome trace came out of the same run and is non-trivial.
    assert!(report.trace_json.contains("serve_solve"));
}

/// The backend seam end to end: a service-backed scheduler adopts the
/// snapshot the service published for its cohort, exactly like a
/// pool-backed one would.
#[test]
fn service_backend_snapshot_round_trip() {
    let svc = Arc::new(service(2, AdmissionConfig::default()));
    let profiler = warm_profiler();
    assert_eq!(
        svc.submit_request(1, 1200.0, &profiler, 1.0),
        AdmissionOutcome::Admitted
    );
    assert_eq!(svc.run_pending(1200.0), 1);
    let backend: Arc<dyn CalibrationBackend> = Arc::clone(&svc) as _;
    let snap = backend.snapshot(1);
    assert_eq!(snap.seq, 1);
    assert!(snap.calibration.is_some());
    assert_eq!(backend.snapshot(0).seq, 0, "cohort isolation");
    assert_eq!(backend.cohorts(), 2);
}
