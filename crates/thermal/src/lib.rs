//! Thermal substrate for the CAPMAN reproduction.
//!
//! The paper adds a thermoelectric cooler (TEC) above the CPU hot spot and
//! turns it on whenever the spot exceeds the 45 degC skin-temperature
//! threshold. This crate provides:
//!
//! * [`network`] — a lumped thermal RC network with the phone preset used
//!   throughout the evaluation (CPU body, CPU hot spot, battery, screen,
//!   shell, fixed ambient), including the passive cooling-plate baseline.
//! * [`tec`] — the TEC physics of Eq. (1), `Qc = S_T Tc I - I^2 R / 2 -
//!   K (Th - Tc)`, with the delta-T-versus-current curve of Fig. 6 peaking
//!   at the rated 1.0 A, and the bang-bang [`tec::TecController`].
//! * [`hotspot`] — the 45 degC hot-spot threshold and detection helpers.
//!
//! # Example
//!
//! ```
//! use capman_thermal::network::{NodeId, ThermalNetwork};
//! use capman_thermal::tec::Tec;
//!
//! let mut phone = ThermalNetwork::phone();
//! let tec = Tec::ate31();
//! // Run the CPU hot for ten simulated minutes.
//! for _ in 0..600 {
//!     phone.inject(NodeId::Cpu, 2.0);
//!     phone.inject(NodeId::HotSpot, 0.8);
//!     phone.step(1.0);
//! }
//! assert!(phone.temp_c(NodeId::HotSpot) > phone.temp_c(NodeId::Shell));
//! let dt = tec.delta_t_steady(tec.rated_current_a());
//! assert!(dt > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hotspot;
pub mod network;
pub mod tec;

pub use hotspot::HOT_SPOT_THRESHOLD_C;
pub use network::{NodeId, ThermalNetwork};
pub use tec::{Tec, TecController, TecStep};
