//! The metrics registry: sharded atomic counters, gauges, and
//! fixed-bucket histograms.
//!
//! Every metric is built from plain `std::sync::atomic` cells — no
//! locks on the update path. Counters and histograms are *sharded*:
//! each thread is assigned (round-robin, on first use) one of
//! [`N_SHARDS`] cache-line-padded cells and only ever RMWs its own,
//! so concurrent increments from a fleet's shard workers and the
//! calibration pool's background threads never contend on one cache
//! line. Reads (`value`, snapshots) sum the shards; they are exact once
//! the writers have quiesced, which is when reports read them (end of a
//! run, after `drain`).
//!
//! The [`Registry`] hands out `Arc` handles keyed by metric name —
//! registering the same name twice returns the same metric, so call
//! sites can cache a handle in a `OnceLock` (see the `counter!` /
//! `gauge!` / `histogram!` macros in the crate root) and the registry
//! mutex is only touched once per site per process.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Update shards per metric. 16 lines cover the core counts this
/// workspace fans out to; threads beyond that share shards round-robin.
pub const N_SHARDS: usize = 16;

/// One cache line worth of counter cell, so neighbouring shards never
/// false-share.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedU64(AtomicU64);

/// The shard this thread updates. Assigned round-robin on first use and
/// sticky for the thread's lifetime.
fn shard_index() -> usize {
    use std::cell::Cell;
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    SHARD.with(|slot| {
        let cached = slot.get();
        if cached != usize::MAX {
            return cached;
        }
        let assigned = NEXT.fetch_add(1, Ordering::Relaxed) % N_SHARDS;
        slot.set(assigned);
        assigned
    })
}

/// A monotonically increasing counter.
#[derive(Debug)]
pub struct Counter {
    name: String,
    help: String,
    shards: [PaddedU64; N_SHARDS],
}

impl Counter {
    fn new(name: &str, help: &str) -> Self {
        Counter {
            name: name.to_string(),
            help: help.to_string(),
            shards: std::array::from_fn(|_| PaddedU64::default()),
        }
    }

    /// The registered metric name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The registered help line.
    pub fn help(&self) -> &str {
        &self.help
    }

    /// Add `n` to the counter. Wait-free: one relaxed RMW on the
    /// calling thread's shard.
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total across every shard.
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A gauge: a signed value that can move both ways (queue depths,
/// in-flight counts). Single cell — gauges are set/adjusted far less
/// often than counters are bumped.
#[derive(Debug)]
pub struct Gauge {
    name: String,
    help: String,
    cell: AtomicI64,
}

impl Gauge {
    fn new(name: &str, help: &str) -> Self {
        Gauge {
            name: name.to_string(),
            help: help.to_string(),
            cell: AtomicI64::new(0),
        }
    }

    /// The registered metric name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The registered help line.
    pub fn help(&self) -> &str {
        &self.help
    }

    /// Overwrite the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Move the gauge up by `n`.
    #[inline]
    pub fn add(&self, n: i64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Move the gauge down by `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.cell.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// One shard of a histogram: per-bucket counts plus an f64 sum kept as
/// bits (CAS-add; contention-free because only one thread writes a
/// shard in steady state).
#[derive(Debug)]
struct HistShard {
    counts: Vec<AtomicU64>,
    sum_bits: AtomicU64,
}

/// How many exemplars a histogram retains: the slowest
/// [`MAX_EXEMPLARS`] traced observations since the last reset.
pub const MAX_EXEMPLARS: usize = 4;

/// A fixed-bucket histogram. Bucket `i` counts observations `v` with
/// `v <= bounds[i]` (and above the previous bound); one implicit
/// `+Inf` bucket catches the rest, Prometheus-style.
///
/// Histograms can also carry **exemplars**: the slowest-N traced
/// observations (`(value, trace_id)` pairs, see
/// [`observe_with_exemplar`](Histogram::observe_with_exemplar)), so a
/// bad p99 in a scrape points at a concrete trace id to pull up in the
/// span drain.
#[derive(Debug)]
pub struct Histogram {
    name: String,
    help: String,
    bounds: Vec<f64>,
    shards: Vec<HistShard>,
    /// Slowest-N `(value, trace)` pairs, sorted descending by value.
    /// A Mutex is fine here: it is touched only by traced observations
    /// that beat the current floor — a cold path by construction.
    exemplars: Mutex<Vec<(f64, u64)>>,
}

impl Histogram {
    fn new(name: &str, help: &str, bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite (+Inf is implicit)"
        );
        Histogram {
            name: name.to_string(),
            help: help.to_string(),
            bounds: bounds.to_vec(),
            shards: (0..N_SHARDS)
                .map(|_| HistShard {
                    counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                    sum_bits: AtomicU64::new(0.0f64.to_bits()),
                })
                .collect(),
            exemplars: Mutex::new(Vec::new()),
        }
    }

    /// The registered metric name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The registered help line.
    pub fn help(&self) -> &str {
        &self.help
    }

    /// The finite upper bounds (the `+Inf` bucket is implicit).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Record one observation. Lock-free: a relaxed bucket RMW plus a
    /// CAS loop on the shard's running sum (uncontended — the shard is
    /// effectively thread-private).
    pub fn observe(&self, v: f64) {
        let shard = &self.shards[shard_index()];
        let bucket = self.bounds.partition_point(|&ub| v > ub);
        shard.counts[bucket].fetch_add(1, Ordering::Relaxed);
        let mut cur = shard.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match shard.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Record one observation and, when `trace` is non-zero and the
    /// value beats (or the buffer has room under) the current slowest-N
    /// floor, retain `(v, trace)` as an exemplar. The bucket/sum update
    /// is identical to [`observe`](Histogram::observe); the exemplar
    /// path takes a mutex only when the observation actually qualifies.
    pub fn observe_with_exemplar(&self, v: f64, trace: u64) {
        self.observe(v);
        if trace == 0 || !v.is_finite() {
            return;
        }
        // Racy pre-check against the floor keeps the hot path lock-free;
        // the locked re-check keeps the buffer correct.
        let mut ex = self.exemplars.lock().expect("exemplar buffer poisoned");
        if ex.len() >= MAX_EXEMPLARS && ex.last().is_some_and(|&(floor, _)| v <= floor) {
            return;
        }
        let at = ex.partition_point(|&(have, _)| have > v);
        ex.insert(at, (v, trace));
        ex.truncate(MAX_EXEMPLARS);
    }

    /// The retained exemplars: up to [`MAX_EXEMPLARS`] `(value, trace)`
    /// pairs, slowest first.
    pub fn exemplars(&self) -> Vec<(f64, u64)> {
        self.exemplars
            .lock()
            .expect("exemplar buffer poisoned")
            .clone()
    }

    /// Clear the exemplar buffer (bucket counts and sums are untouched).
    /// The soak harness calls this at window boundaries so exemplars
    /// mean "slowest of the current window", not of all time.
    pub fn reset_exemplars(&self) {
        self.exemplars
            .lock()
            .expect("exemplar buffer poisoned")
            .clear();
    }

    /// Non-cumulative per-bucket counts (length `bounds.len() + 1`; the
    /// last entry is the `+Inf` bucket).
    pub fn bucket_counts(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.bounds.len() + 1];
        for shard in &self.shards {
            for (slot, c) in out.iter_mut().zip(&shard.counts) {
                *slot += c.load(Ordering::Relaxed);
            }
        }
        out
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.bucket_counts().iter().sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        self.shards
            .iter()
            .map(|s| f64::from_bits(s.sum_bits.load(Ordering::Relaxed)))
            .sum()
    }

    /// Approximate quantile `q` in `[0, 1]` from the bucket counts: the
    /// upper bound of the bucket holding the q-th observation (the last
    /// finite bound for the `+Inf` bucket), 0.0 with no observations.
    /// Bucket-resolution only — good enough for report lines, not for
    /// gating tight latencies.
    pub fn quantile(&self, q: f64) -> f64 {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self.bounds.get(i).copied().unwrap_or_else(|| {
                    // +Inf bucket: report the largest finite bound.
                    *self.bounds.last().expect("bounds are non-empty")
                });
            }
        }
        *self.bounds.last().expect("bounds are non-empty")
    }
}

/// Point-in-time copy of one histogram, for exporters.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Help line.
    pub help: String,
    /// Finite upper bounds.
    pub bounds: Vec<f64>,
    /// Non-cumulative counts, `bounds.len() + 1` entries.
    pub counts: Vec<u64>,
    /// Sum of observations.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
    /// Slowest-N traced observations, `(value, trace)` slowest first.
    pub exemplars: Vec<(f64, u64)>,
}

impl HistogramSnapshot {
    /// Bucket-resolution quantile from the snapshot's counts, matching
    /// [`Histogram::quantile`] exactly: 0.0 when empty, the upper bound
    /// of the bucket holding the q-th observation, and the largest
    /// finite bound for the `+Inf` bucket. The exporters and the serve
    /// SLO monitor both read quantiles through this one definition.
    pub fn quantile(&self, q: f64) -> f64 {
        let total: u64 = self.counts.iter().sum();
        if total == 0 || self.bounds.is_empty() {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self
                    .bounds
                    .get(i)
                    .copied()
                    .unwrap_or_else(|| *self.bounds.last().expect("bounds checked non-empty"));
            }
        }
        *self.bounds.last().expect("bounds checked non-empty")
    }
}

/// Point-in-time copy of a whole registry, sorted by metric name within
/// each kind — what the Prometheus/JSON exporters and tests consume.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, help, total)` per counter.
    pub counters: Vec<(String, String, u64)>,
    /// `(name, help, value)` per gauge.
    pub gauges: Vec<(String, String, i64)>,
    /// One snapshot per histogram.
    pub histograms: Vec<HistogramSnapshot>,
}

/// The metric directory: hands out handles, serves snapshots.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<Vec<Arc<Counter>>>,
    gauges: Mutex<Vec<Arc<Gauge>>>,
    histograms: Mutex<Vec<Arc<Histogram>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter registered under `name`, creating it on first use.
    /// Idempotent: a second registration returns the existing handle
    /// (the first `help` wins).
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        let mut list = self.counters.lock().expect("counter directory poisoned");
        if let Some(found) = list.iter().find(|c| c.name == name) {
            return Arc::clone(found);
        }
        let created = Arc::new(Counter::new(name, help));
        list.push(Arc::clone(&created));
        created
    }

    /// The gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        let mut list = self.gauges.lock().expect("gauge directory poisoned");
        if let Some(found) = list.iter().find(|g| g.name == name) {
            return Arc::clone(found);
        }
        let created = Arc::new(Gauge::new(name, help));
        list.push(Arc::clone(&created));
        created
    }

    /// The histogram registered under `name`, creating it with `bounds`
    /// on first use (later registrations keep the first bounds).
    ///
    /// # Panics
    ///
    /// Panics on first registration if `bounds` is empty, non-finite,
    /// or not strictly increasing.
    pub fn histogram(&self, name: &str, help: &str, bounds: &[f64]) -> Arc<Histogram> {
        let mut list = self
            .histograms
            .lock()
            .expect("histogram directory poisoned");
        if let Some(found) = list.iter().find(|h| h.name == name) {
            return Arc::clone(found);
        }
        let created = Arc::new(Histogram::new(name, help, bounds));
        list.push(Arc::clone(&created));
        created
    }

    /// Clear every histogram's exemplar buffer — a window boundary in
    /// the soak harness. Bucket counts, sums, counters, and gauges are
    /// untouched.
    pub fn reset_exemplars(&self) {
        for h in self
            .histograms
            .lock()
            .expect("histogram directory poisoned")
            .iter()
        {
            h.reset_exemplars();
        }
    }

    /// Copy out every metric, sorted by name within each kind.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters: Vec<(String, String, u64)> = self
            .counters
            .lock()
            .expect("counter directory poisoned")
            .iter()
            .map(|c| (c.name.clone(), c.help.clone(), c.value()))
            .collect();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        let mut gauges: Vec<(String, String, i64)> = self
            .gauges
            .lock()
            .expect("gauge directory poisoned")
            .iter()
            .map(|g| (g.name.clone(), g.help.clone(), g.value()))
            .collect();
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        let mut histograms: Vec<HistogramSnapshot> = self
            .histograms
            .lock()
            .expect("histogram directory poisoned")
            .iter()
            .map(|h| HistogramSnapshot {
                name: h.name.clone(),
                help: h.help.clone(),
                bounds: h.bounds.clone(),
                counts: h.bucket_counts(),
                sum: h.sum(),
                count: h.count(),
                exemplars: h.exemplars(),
            })
            .collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_shards() {
        let r = Registry::new();
        let c = r.counter("requests_total", "Requests");
        c.inc();
        c.add(41);
        assert_eq!(c.value(), 42);
        // Idempotent registration returns the same cells.
        let again = r.counter("requests_total", "ignored");
        again.inc();
        assert_eq!(c.value(), 43);
        assert_eq!(c.help(), "Requests", "first help wins");
    }

    #[test]
    fn gauge_moves_both_ways() {
        let r = Registry::new();
        let g = r.gauge("depth", "Queue depth");
        g.add(5);
        g.sub(2);
        assert_eq!(g.value(), 3);
        g.set(-7);
        assert_eq!(g.value(), -7);
    }

    #[test]
    fn histogram_buckets_sum_and_quantiles() {
        let r = Registry::new();
        let h = r.histogram("lat_ms", "Latency", &[1.0, 10.0, 100.0]);
        for v in [0.5, 0.9, 5.0, 50.0, 500.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 556.4).abs() < 1e-9);
        assert_eq!(h.bucket_counts(), vec![2, 1, 1, 1]);
        // p50 of 5 observations is the 3rd -> bucket (1, 10].
        assert_eq!(h.quantile(0.5), 10.0);
        // The +Inf bucket reports the largest finite bound.
        assert_eq!(h.quantile(1.0), 100.0);
        assert_eq!(h.quantile(0.0), 1.0, "rank clamps to the first sample");
    }

    #[test]
    fn all_observations_in_the_overflow_bucket_pin_the_top_finite_bound() {
        // Regression: when every observation lands in the implicit +Inf
        // bucket, every quantile must report the largest finite bound —
        // never NaN, never infinity.
        let r = Registry::new();
        let h = r.histogram("over", "Overflow only", &[1.0, 10.0]);
        for _ in 0..5 {
            h.observe(1e9);
        }
        for q in [0.0, 0.5, 0.99, 1.0] {
            let live = h.quantile(q);
            assert!(live.is_finite(), "live quantile({q}) must be finite");
            assert_eq!(live, 10.0, "live quantile({q}) is the top finite bound");
        }
        let snap = r.snapshot();
        let hs = &snap.histograms[0];
        assert_eq!(hs.counts, vec![0, 0, 5]);
        for q in [0.0, 0.5, 0.99, 1.0] {
            let from_snap = hs.quantile(q);
            assert!(
                from_snap.is_finite(),
                "snapshot quantile({q}) must be finite"
            );
            assert_eq!(from_snap, 10.0, "snapshot matches the live histogram");
        }
    }

    #[test]
    fn exemplars_keep_the_slowest_traced_observations() {
        let r = Registry::new();
        let h = r.histogram("stale_s", "Staleness", &[1.0, 10.0]);
        h.observe(100.0); // untraced: never an exemplar
        for (v, trace) in [(2.0, 11), (9.0, 12), (1.0, 13), (5.0, 14), (7.0, 15)] {
            h.observe_with_exemplar(v, trace);
        }
        h.observe_with_exemplar(3.0, 0); // trace 0: not an exemplar
        let ex = h.exemplars();
        assert_eq!(ex.len(), MAX_EXEMPLARS);
        assert_eq!(ex[0], (9.0, 12), "slowest first");
        assert_eq!(
            ex.iter().map(|&(_, t)| t).collect::<Vec<_>>(),
            vec![12, 15, 14, 11],
            "the fastest traced observation fell off"
        );
        assert_eq!(h.count(), 7, "every observation still counts");
        let snap = r.snapshot();
        assert_eq!(snap.histograms[0].exemplars, ex);
        r.reset_exemplars();
        assert!(h.exemplars().is_empty());
        assert_eq!(h.count(), 7, "reset only touches exemplars");
    }

    #[test]
    fn empty_histogram_quantile_is_zero_not_nan() {
        let r = Registry::new();
        let h = r.histogram("idle", "Never observed", &[1.0]);
        assert_eq!(h.quantile(0.99), 0.0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0.0);
    }

    #[test]
    fn boundary_observations_land_in_the_le_bucket() {
        let r = Registry::new();
        let h = r.histogram("edges", "Boundary semantics", &[1.0, 2.0]);
        h.observe(1.0); // le="1" (v <= bound, Prometheus semantics)
        h.observe(2.0); // le="2"
        assert_eq!(h.bucket_counts(), vec![1, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_are_rejected() {
        let r = Registry::new();
        let _ = r.histogram("bad", "", &[2.0, 1.0]);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let r = Registry::new();
        r.counter("b_total", "B").add(2);
        r.counter("a_total", "A").add(1);
        r.gauge("g", "G").set(9);
        r.histogram("h", "H", &[1.0]).observe(0.5);
        let snap = r.snapshot();
        assert_eq!(snap.counters[0].0, "a_total");
        assert_eq!(snap.counters[1].0, "b_total");
        assert_eq!(snap.counters[1].2, 2);
        assert_eq!(snap.gauges[0].2, 9);
        assert_eq!(snap.histograms[0].count, 1);
        assert_eq!(snap.histograms[0].counts, vec![1, 0]);
    }
}
