//! A dense square matrix of `f64`, used for the similarity matrices
//! `S` and `A` of Algorithm 1.

use serde::{Deserialize, Serialize};

/// A dense square matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SquareMatrix {
    n: usize,
    data: Vec<f64>,
}

impl SquareMatrix {
    /// An `n x n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        SquareMatrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// The `n x n` identity matrix (Algorithm 1's initialisation).
    pub fn identity(n: usize) -> Self {
        let mut m = SquareMatrix::zeros(n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Dimension `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Element `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index out of bounds");
        self.data[i * self.n + j]
    }

    /// Set element `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        assert!(i < self.n && j < self.n, "index out of bounds");
        self.data[i * self.n + j] = value;
    }

    /// Largest absolute elementwise difference to another matrix.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn max_abs_diff(&self, other: &SquareMatrix) -> f64 {
        assert_eq!(self.n, other.n, "dimension mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// The backing row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the backing row-major storage, for row-chunked
    /// writers (the parallel similarity engine fills disjoint row
    /// slices concurrently).
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.n, "index out of bounds");
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// Copy every element above the diagonal onto its transpose slot,
    /// making the matrix symmetric from upper-triangle-only writes.
    pub fn mirror_upper_to_lower(&mut self) {
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                self.data[j * self.n + i] = self.data[i * self.n + j];
            }
        }
    }

    /// Whether every element lies in `[lo, hi]`.
    pub fn all_within(&self, lo: f64, hi: f64) -> bool {
        self.data.iter().all(|&x| x >= lo && x <= hi)
    }

    /// Whether the matrix is symmetric to within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                if (self.get(i, j) - self.get(j, i)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_has_unit_diagonal() {
        let m = SquareMatrix::identity(4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(m.get(i, j), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn set_get_roundtrip() {
        let mut m = SquareMatrix::zeros(3);
        m.set(1, 2, 0.5);
        assert_eq!(m.get(1, 2), 0.5);
        assert_eq!(m.get(2, 1), 0.0);
    }

    #[test]
    fn max_abs_diff_detects_change() {
        let a = SquareMatrix::identity(3);
        let mut b = a.clone();
        assert_eq!(a.max_abs_diff(&b), 0.0);
        b.set(0, 2, 0.25);
        assert_eq!(a.max_abs_diff(&b), 0.25);
    }

    #[test]
    fn symmetry_check() {
        let mut m = SquareMatrix::identity(3);
        assert!(m.is_symmetric(0.0));
        m.set(0, 1, 0.3);
        assert!(!m.is_symmetric(1e-12));
        m.set(1, 0, 0.3);
        assert!(m.is_symmetric(1e-12));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let _ = SquareMatrix::zeros(2).get(2, 0);
    }
}
