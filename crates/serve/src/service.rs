//! The resident calibration service.
//!
//! [`CalibrationService`] is the admission-controlled, SLO-enforced
//! sibling of `capman_fleet::CalibrationPool`. Both implement
//! [`CalibrationBackend`], so a `PooledCapmanPolicy` (and hence a whole
//! `DeviceArena` fleet) drives either without noticing. Where the pool
//! is FIFO-fair and per-run, the service is a long-lived multi-tenant
//! broker:
//!
//! * **Admission** (see [`crate::admission`]): every cohort owns at
//!   most one pending slot, per-window quotas meter it, the pending
//!   total is bounded, and overload replaces payloads in place instead
//!   of growing a queue.
//! * **Scheduling** (see [`crate::lanes`]): the next solve goes to the
//!   request with the hottest effective lane — stalest published
//!   calibration, promoted by skip-aging — with ties broken by skips,
//!   then staleness, then cohort index. Passed-over requests age.
//! * **SLO enforcement** (see [`crate::slo`]): [`evaluate_slo`]
//!   (CalibrationService::evaluate_slo) judges the service's own
//!   registry snapshot and flips the mode; the mode scales the
//!   admission quota on the next submissions.
//!
//! # Execution modes
//!
//! With `workers == 0` the service is **manually stepped**
//! ([`step`](CalibrationService::step) /
//! [`run_pending`](CalibrationService::run_pending)): fully
//! deterministic, the mode the fairness proptests and the soak harness
//! use. With `workers > 0` background threads pull picks from the same
//! scheduler under a condvar, and shutdown is drain-on-drop with pool
//! semantics: started solves publish before the join, admitted-but-
//! unstarted requests are counted `abandoned`.
//!
//! # Counter identities
//!
//! Two identities hold at every quiescent point and are pinned by
//! tests, including across shutdown races:
//!
//! ```text
//! submitted == admitted + coalesced + replaced + shed + backpressure
//! admitted  == completed + pending + abandoned
//! ```
//!
//! (`pending` is 0 after shutdown, so post-shutdown the second reads
//! `admitted == completed + abandoned`.)

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use arc_swap::ArcSwap;
use capman_core::online::{Calibrator, CalibratorSpec};
use capman_core::profiler::Profiler;
use capman_fleet::{CalibrationBackend, CalibrationSnapshot, SnapshotTrace, SubmitOutcome};
use capman_obs::{CompletedTrace, Counter, FlightRecorder, Gauge, Histogram, Registry, Tracer};

use crate::admission::{effective_quota, AdmissionConfig, AdmissionOutcome, CohortLedger};
use crate::lanes::{self, Lane, LaneConfig};
use crate::slo::{ServiceMode, SloConfig, SloMonitor, SloVerdict};

/// Full service configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Admission-layer sizing and quotas.
    pub admission: AdmissionConfig,
    /// Lane thresholds and aging.
    pub lanes: LaneConfig,
    /// SLO objectives and enforcement knobs.
    pub slo: SloConfig,
    /// Background solver threads. 0 = manually stepped (deterministic).
    pub workers: usize,
    /// Span-ring capacity of the service's tracer.
    pub trace_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            admission: AdmissionConfig::default(),
            lanes: LaneConfig::default(),
            slo: SloConfig::default(),
            workers: 0,
            trace_capacity: 8192,
        }
    }
}

/// Counter snapshot for reports and the overload tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceCounters {
    /// Total submissions.
    pub submitted: u64,
    /// Admitted into a pending slot.
    pub admitted: u64,
    /// Absorbed by an in-flight solve.
    pub coalesced: u64,
    /// Replaced a cohort's pending payload in place (drop-oldest).
    pub replaced: u64,
    /// Rejected: cohort quota exhausted for the window.
    pub shed: u64,
    /// Rejected: service-wide pending bound reached.
    pub backpressure: u64,
    /// Solves completed and published.
    pub completed: u64,
    /// Admitted requests discarded unstarted at shutdown.
    pub abandoned: u64,
}

impl ServiceCounters {
    /// Submissions whose payload never reached a solve (the shed side
    /// of the load-shedding story).
    pub fn shed_submissions(&self) -> u64 {
        self.replaced + self.shed + self.backpressure
    }

    /// Fraction of submissions shed; 0 when nothing was submitted.
    pub fn shed_fraction(&self) -> f64 {
        if self.submitted == 0 {
            return 0.0;
        }
        self.shed_submissions() as f64 / self.submitted as f64
    }
}

/// An admitted request parked in its cohort's pending slot.
struct PendingRequest {
    /// Payload timestamp: simulated time of the newest submission
    /// folded into this slot (replacements refresh it).
    payload_t_s: f64,
    /// When the slot was first filled — bounded wait is measured from
    /// here, and replacements do NOT refresh it.
    first_submitted_s: f64,
    /// Pick rounds this request has been passed over.
    skips: u32,
    profiler: Profiler,
    compute_speed: f64,
    /// Causal trace id minted at admission (replacements keep it, like
    /// the age fields — the trace follows the slot, not the payload).
    trace: u64,
    /// Record id of the admission's origin event (flow-link source for
    /// the queue hop).
    origin: u64,
    /// Simulated time the scheduler first passed this request over —
    /// the end of pure queue wait in the critical-path decomposition.
    first_skipped_s: Option<f64>,
    /// Simulated time of the winning pick; set by `pick`.
    picked_s: f64,
    /// Record id of the `serve_pick` event; set by `pick`.
    pick_event: u64,
}

#[derive(Default)]
struct CohortCell {
    pending: Option<PendingRequest>,
    ledger: CohortLedger,
}

struct SchedState {
    cells: Vec<CohortCell>,
    pending_count: usize,
    /// High-water mark of submission time — the scheduler's notion of
    /// "now" when workers pick asynchronously.
    last_now_s: f64,
    draining: bool,
}

struct ServeSlot {
    snapshot: ArcSwap<CalibrationSnapshot>,
    calibrator: Mutex<Calibrator>,
    in_flight: AtomicBool,
    /// Highest snapshot seq a device has adopted: the *first* adoption
    /// of each publication closes its trace; cohort-mates adopting the
    /// same snapshot later are no-ops for tracing.
    last_adopted_seq: AtomicU64,
}

struct Counters {
    submitted: AtomicU64,
    admitted: AtomicU64,
    coalesced: AtomicU64,
    replaced: AtomicU64,
    shed: AtomicU64,
    backpressure: AtomicU64,
    completed: AtomicU64,
    abandoned: AtomicU64,
}

/// Cached registry handles — the registry lookup is a scan, so the hot
/// paths must not repeat it per submission.
struct Metrics {
    outcome: [Arc<Counter>; 5],
    completed: Arc<Counter>,
    abandoned: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    mode: Arc<Gauge>,
    staleness: Arc<Histogram>,
    lane_staleness: [Arc<Histogram>; 3],
    lane_picks: [Arc<Counter>; 3],
    solve_us: Arc<Histogram>,
    /// Critical-path phase histograms, indexed like
    /// [`PHASE_NAMES`]: queue, lane, solve, publish→adopt. Their
    /// per-trace values sum to the request's served staleness.
    phase: [Arc<Histogram>; 4],
}

/// Names of the critical-path phase histograms, in decomposition order.
pub const PHASE_NAMES: [&str; 4] = [
    "serve_phase_queue_s",
    "serve_phase_lane_s",
    "serve_phase_solve_s",
    "serve_phase_publish_adopt_s",
];

const STALENESS_BOUNDS: [f64; 10] = [
    1.0, 5.0, 15.0, 60.0, 120.0, 300.0, 600.0, 1200.0, 2400.0, 4800.0,
];
const SOLVE_BOUNDS: [f64; 12] = [
    100.0, 250.0, 500.0, 1e3, 2.5e3, 5e3, 1e4, 2.5e4, 5e4, 1e5, 2.5e5, 1e6,
];

impl Metrics {
    fn build(registry: &Registry) -> Self {
        let outcome_counter = |o: AdmissionOutcome, help: &str| {
            registry.counter(&format!("serve_{}_total", o.label()), help)
        };
        let lane_hist = |lane: Lane| {
            registry.histogram(
                &format!("serve_staleness_{}_s", lane.label()),
                "First-submission-to-solve wait for picks served on this lane, simulated seconds",
                &STALENESS_BOUNDS,
            )
        };
        let lane_counter = |lane: Lane| {
            registry.counter(
                &format!("serve_lane_{}_total", lane.label()),
                "Picks served on this effective lane",
            )
        };
        Metrics {
            outcome: [
                outcome_counter(AdmissionOutcome::Admitted, "Submissions admitted to a slot"),
                outcome_counter(
                    AdmissionOutcome::Coalesced,
                    "Submissions absorbed by an in-flight solve",
                ),
                outcome_counter(
                    AdmissionOutcome::Replaced,
                    "Pending payloads replaced in place (drop-oldest)",
                ),
                outcome_counter(AdmissionOutcome::Shed, "Submissions shed on cohort quota"),
                outcome_counter(
                    AdmissionOutcome::Backpressure,
                    "Submissions refused on the service-wide pending bound",
                ),
            ],
            completed: registry.counter("serve_completed_total", "Solves completed and published"),
            abandoned: registry.counter(
                "serve_abandoned_total",
                "Admitted requests discarded unstarted at shutdown",
            ),
            queue_depth: registry
                .gauge("serve_queue_depth", "Pending (admitted, unsolved) requests"),
            mode: registry.gauge(
                "serve_mode",
                "Service mode: 0 normal, 1 degraded, 2 shedding",
            ),
            staleness: registry.histogram(
                "serve_staleness_s",
                "Simulated seconds from a request's first submission to the start of its solve",
                &STALENESS_BOUNDS,
            ),
            lane_staleness: [
                lane_hist(Lane::Hot),
                lane_hist(Lane::Normal),
                lane_hist(Lane::Cold),
            ],
            lane_picks: [
                lane_counter(Lane::Hot),
                lane_counter(Lane::Normal),
                lane_counter(Lane::Cold),
            ],
            solve_us: registry.histogram(
                "serve_solve_us",
                "Background calibration solve wall time, microseconds",
                &SOLVE_BOUNDS,
            ),
            phase: [
                registry.histogram(
                    PHASE_NAMES[0],
                    "Critical path: pure queue wait (submission to first scheduler consideration), simulated seconds",
                    &STALENESS_BOUNDS,
                ),
                registry.histogram(
                    PHASE_NAMES[1],
                    "Critical path: lane wait (first consideration to the winning pick), simulated seconds",
                    &STALENESS_BOUNDS,
                ),
                registry.histogram(
                    PHASE_NAMES[2],
                    "Critical path: solve (pick to publication), simulated seconds",
                    &STALENESS_BOUNDS,
                ),
                registry.histogram(
                    PHASE_NAMES[3],
                    "Critical path: adoption lag (publication to first device adoption), simulated seconds",
                    &STALENESS_BOUNDS,
                ),
            ],
        }
    }

    fn outcome(&self, o: AdmissionOutcome) -> &Counter {
        let index = match o {
            AdmissionOutcome::Admitted => 0,
            AdmissionOutcome::Coalesced => 1,
            AdmissionOutcome::Replaced => 2,
            AdmissionOutcome::Shed => 3,
            AdmissionOutcome::Backpressure => 4,
        };
        &self.outcome[index]
    }
}

struct Shared {
    config: ServiceConfig,
    slots: Vec<ServeSlot>,
    sched: Mutex<SchedState>,
    work_ready: Condvar,
    mode: AtomicU8,
    counters: Counters,
    registry: Registry,
    tracer: Tracer,
    metrics: Metrics,
    /// Attached flight recorder, if any: receives completed traces at
    /// adoption and verdicts/snapshots/drains at SLO evaluation, and is
    /// dumped when the mode degrades.
    flight: Mutex<Option<Arc<FlightRecorder>>>,
}

/// The resident multi-tenant calibration service.
pub struct CalibrationService {
    shared: Arc<Shared>,
    monitor: Mutex<SloMonitor>,
    workers: Vec<JoinHandle<()>>,
}

impl CalibrationService {
    /// A service with one calibrator slot per cohort spec. Spawns
    /// `config.workers` solver threads (0 = manual stepping).
    pub fn new(specs: &[CalibratorSpec], config: ServiceConfig) -> Self {
        assert!(!specs.is_empty(), "service needs at least one cohort");
        assert!(config.admission.queue_bound > 0, "service needs a queue");
        let registry = Registry::new();
        let metrics = Metrics::build(&registry);
        let slots = specs
            .iter()
            .map(|spec| ServeSlot {
                snapshot: ArcSwap::from_pointee(empty_snapshot()),
                calibrator: Mutex::new(spec.build()),
                in_flight: AtomicBool::new(false),
                last_adopted_seq: AtomicU64::new(0),
            })
            .collect::<Vec<_>>();
        let cells = (0..slots.len()).map(|_| CohortCell::default()).collect();
        let shared = Arc::new(Shared {
            config,
            slots,
            sched: Mutex::new(SchedState {
                cells,
                pending_count: 0,
                last_now_s: 0.0,
                draining: false,
            }),
            work_ready: Condvar::new(),
            mode: AtomicU8::new(ServiceMode::Normal.as_u8()),
            counters: Counters {
                submitted: AtomicU64::new(0),
                admitted: AtomicU64::new(0),
                coalesced: AtomicU64::new(0),
                replaced: AtomicU64::new(0),
                shed: AtomicU64::new(0),
                backpressure: AtomicU64::new(0),
                completed: AtomicU64::new(0),
                abandoned: AtomicU64::new(0),
            },
            registry,
            tracer: Tracer::new(config.trace_capacity),
            metrics,
            flight: Mutex::new(None),
        });
        let workers = (0..config.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || Self::worker(&shared))
            })
            .collect();
        CalibrationService {
            shared,
            monitor: Mutex::new(SloMonitor::new(config.slo)),
            workers,
        }
    }

    /// Submit a calibration request and get the full admission verdict.
    /// Never blocks on a solve; `O(1)` under the scheduler lock.
    pub fn submit_request(
        &self,
        cohort: usize,
        now_s: f64,
        profiler: &Profiler,
        compute_speed: f64,
    ) -> AdmissionOutcome {
        let shared = &self.shared;
        shared.counters.submitted.fetch_add(1, Ordering::Relaxed);
        // Every submission mints a causal trace at the boundary; only
        // the one that fills (and keeps) the pending slot completes.
        let ctx = shared.tracer.begin_trace("serve_submit", cohort as u64);
        let outcome = {
            let mut st = shared.sched.lock().expect("scheduler poisoned");
            st.last_now_s = st.last_now_s.max(now_s);
            if st.draining {
                // A draining service admits nothing more; callers racing
                // a graceful teardown get an explicit refusal.
                AdmissionOutcome::Backpressure
            } else if shared.slots[cohort].in_flight.load(Ordering::Acquire) {
                AdmissionOutcome::Coalesced
            } else if let Some(pending) = st.cells[cohort].pending.as_mut() {
                // Drop-oldest per cohort: replace the payload in place.
                // Age (first_submitted_s, skips) is kept — overload must
                // not reset a tenant's position in line.
                pending.payload_t_s = now_s;
                pending.profiler = profiler.clone();
                pending.compute_speed = compute_speed;
                AdmissionOutcome::Replaced
            } else if st.pending_count >= shared.config.admission.queue_bound {
                // Checked before the quota: a refused submission must
                // not burn window quota the cohort never got to use.
                AdmissionOutcome::Backpressure
            } else {
                let mode = ServiceMode::from_u8(shared.mode.load(Ordering::Relaxed));
                let quota = effective_quota(shared.config.admission.quota_per_window, mode);
                let cell = &mut st.cells[cohort];
                cell.ledger.roll(now_s, shared.config.admission.window_s);
                if cell.ledger.try_admit(quota) {
                    cell.pending = Some(PendingRequest {
                        payload_t_s: now_s,
                        first_submitted_s: now_s,
                        skips: 0,
                        profiler: profiler.clone(),
                        compute_speed,
                        trace: ctx.trace,
                        origin: ctx.origin,
                        first_skipped_s: None,
                        picked_s: now_s,
                        pick_event: 0,
                    });
                    st.pending_count += 1;
                    shared.metrics.queue_depth.set(st.pending_count as i64);
                    shared.work_ready.notify_one();
                    AdmissionOutcome::Admitted
                } else {
                    AdmissionOutcome::Shed
                }
            }
        };
        shared.metrics.outcome(outcome).inc();
        match outcome {
            AdmissionOutcome::Admitted => {
                shared.counters.admitted.fetch_add(1, Ordering::Relaxed);
            }
            AdmissionOutcome::Coalesced => {
                shared.counters.coalesced.fetch_add(1, Ordering::Relaxed);
            }
            AdmissionOutcome::Replaced => {
                shared.counters.replaced.fetch_add(1, Ordering::Relaxed);
            }
            AdmissionOutcome::Shed => {
                shared.counters.shed.fetch_add(1, Ordering::Relaxed);
            }
            AdmissionOutcome::Backpressure => {
                shared.counters.backpressure.fetch_add(1, Ordering::Relaxed);
            }
        }
        outcome
    }

    /// Pick the hottest pending request and age the rest. Returns
    /// `None` when nothing is pending. Must run under the scheduler
    /// lock; marks the cohort in flight before returning so concurrent
    /// submissions coalesce.
    fn pick(shared: &Shared, st: &mut SchedState) -> Option<(usize, PendingRequest)> {
        let now = st.last_now_s;
        let lane_cfg = &shared.config.lanes;
        let mut best: Option<(usize, usize, u32, f64)> = None; // cohort, rank, skips, staleness
        for (cohort, cell) in st.cells.iter().enumerate() {
            let Some(pending) = &cell.pending else {
                continue;
            };
            let snap = shared.slots[cohort].snapshot.load_full();
            let staleness = if snap.seq == 0 {
                f64::INFINITY
            } else {
                (now - snap.requested_at_s).max(0.0)
            };
            let lane = lanes::effective(
                lanes::classify(staleness, lane_cfg),
                pending.skips,
                lane_cfg.promote_after,
            );
            let rank = lane.rank();
            // Pick key: lane rank, then most-skipped, then stalest,
            // then lowest cohort index (a total order, so picks are
            // deterministic).
            let wins = match best {
                None => true,
                Some((b_cohort, b_rank, b_skips, b_staleness)) => {
                    if rank != b_rank {
                        rank < b_rank
                    } else if pending.skips != b_skips {
                        pending.skips > b_skips
                    } else if staleness != b_staleness {
                        staleness > b_staleness
                    } else {
                        cohort < b_cohort
                    }
                }
            };
            if wins {
                best = Some((cohort, rank, pending.skips, staleness));
            }
        }
        let (cohort, rank, _, _) = best?;
        for (other, cell) in st.cells.iter_mut().enumerate() {
            if other != cohort {
                if let Some(pending) = cell.pending.as_mut() {
                    pending.skips = pending.skips.saturating_add(1);
                    // First pass-over ends the request's pure queue
                    // wait: from here on it is waiting on lane rank.
                    pending.first_skipped_s.get_or_insert(now);
                }
            }
        }
        let mut request = st.cells[cohort]
            .pending
            .take()
            .expect("picked cohort has a request");
        st.pending_count -= 1;
        shared.metrics.queue_depth.set(st.pending_count as i64);
        shared.slots[cohort]
            .in_flight
            .store(true, Ordering::Release);
        let wait_s = (now - request.first_submitted_s).max(0.0);
        shared
            .metrics
            .staleness
            .observe_with_exemplar(wait_s, request.trace);
        shared.metrics.lane_staleness[rank].observe_with_exemplar(wait_s, request.trace);
        shared.metrics.lane_picks[rank].inc();
        request.picked_s = now;
        request.pick_event = shared
            .tracer
            .event_in("serve_pick", cohort as u64, request.trace);
        // Stitch the submit→pick hop (submission may have come from a
        // device thread, picks happen under the scheduler).
        shared.tracer.link(
            "serve_queue_flow",
            request.origin,
            request.pick_event,
            request.trace,
        );
        Some((cohort, request))
    }

    /// Run one pick to completion: solve, publish, account. The solve
    /// happens outside the scheduler lock.
    fn execute(shared: &Shared, cohort: usize, request: PendingRequest) {
        let slot = &shared.slots[cohort];
        let span = shared
            .tracer
            .span_in("serve_solve", cohort as u64, request.trace);
        if let Some(span) = &span {
            // Stitch the pick→solve hop (a worker may solve a pick made
            // under another thread's scheduler lock).
            shared.tracer.link(
                "serve_solve_flow",
                request.pick_event,
                span.id(),
                request.trace,
            );
        }
        let wall_us = {
            let mut calibrator = slot.calibrator.lock().expect("calibrator poisoned");
            calibrator.recalibrate(
                request.payload_t_s,
                &request.profiler,
                request.compute_speed,
            )
        };
        let calibration = {
            let calibrator = slot.calibrator.lock().expect("calibrator poisoned");
            calibrator.calibration().cloned()
        };
        // Publication's simulated time: the scheduler clock has kept
        // moving while the solve ran (worker mode), never earlier than
        // the pick.
        let published_s = {
            let st = shared.sched.lock().expect("scheduler poisoned");
            st.last_now_s.max(request.picked_s)
        };
        // Recorded before the store so the event id can ride the
        // snapshot as the adoption hop's flow source.
        let publish_span = shared
            .tracer
            .event_in("serve_publish", cohort as u64, request.trace);
        let trace = (request.trace != 0).then_some(SnapshotTrace {
            trace: request.trace,
            publish_span,
            submitted_s: request.first_submitted_s,
            queue_end_s: request.first_skipped_s.unwrap_or(request.picked_s),
            picked_s: request.picked_s,
            published_s,
        });
        let prev_seq = slot.snapshot.load_full().seq;
        slot.snapshot.store(Arc::new(CalibrationSnapshot {
            seq: prev_seq + 1,
            requested_at_s: request.payload_t_s,
            wall_us,
            calibration,
            trace,
        }));
        shared.metrics.solve_us.observe(wall_us);
        shared.metrics.completed.inc();
        drop(span);
        // Publish before accounting, like the pool: once `completed`
        // covers this solve, readers must already see the snapshot.
        shared.counters.completed.fetch_add(1, Ordering::Release);
        slot.in_flight.store(false, Ordering::Release);
    }

    fn worker(shared: &Arc<Shared>) {
        loop {
            let picked = {
                let mut st = shared.sched.lock().expect("scheduler poisoned");
                loop {
                    // Draining beats pending: admitted-but-unstarted
                    // work is abandoned at shutdown, not raced for.
                    if st.draining {
                        return;
                    }
                    if let Some(picked) = Self::pick(shared, &mut st) {
                        break picked;
                    }
                    st = shared.work_ready.wait(st).expect("scheduler poisoned");
                }
            };
            Self::execute(shared, picked.0, picked.1);
        }
    }

    /// Manually run one solve: pick the hottest pending request at
    /// simulated time `now_s` and execute it synchronously. Returns
    /// whether any work was done. This is the deterministic mode the
    /// fairness tests and the soak harness use (`workers: 0`).
    pub fn step(&self, now_s: f64) -> bool {
        let picked = {
            let mut st = self.shared.sched.lock().expect("scheduler poisoned");
            st.last_now_s = st.last_now_s.max(now_s);
            if st.draining {
                return false;
            }
            Self::pick(&self.shared, &mut st)
        };
        match picked {
            Some((cohort, request)) => {
                Self::execute(&self.shared, cohort, request);
                true
            }
            None => false,
        }
    }

    /// [`step`](Self::step) until nothing is pending; returns the
    /// number of solves run.
    pub fn run_pending(&self, now_s: f64) -> usize {
        let mut ran = 0;
        while self.step(now_s) {
            ran += 1;
        }
        ran
    }

    /// Requests currently parked in pending slots.
    pub fn queue_depth(&self) -> usize {
        self.shared
            .sched
            .lock()
            .expect("scheduler poisoned")
            .pending_count
    }

    /// Current counter values.
    pub fn counters(&self) -> ServiceCounters {
        let c = &self.shared.counters;
        ServiceCounters {
            submitted: c.submitted.load(Ordering::Relaxed),
            admitted: c.admitted.load(Ordering::Relaxed),
            coalesced: c.coalesced.load(Ordering::Relaxed),
            replaced: c.replaced.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            backpressure: c.backpressure.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Acquire),
            abandoned: c.abandoned.load(Ordering::Relaxed),
        }
    }

    /// The service's current operating mode.
    pub fn mode(&self) -> ServiceMode {
        ServiceMode::from_u8(self.shared.mode.load(Ordering::Relaxed))
    }

    /// Judge the service's own registry against the SLO spec, flip the
    /// mode accordingly (quotas pick it up on the next submissions),
    /// and return the verdict. Call once per evaluation window.
    pub fn evaluate_slo(&self) -> SloVerdict {
        let snapshot = self.shared.registry.snapshot();
        let mut monitor = self.monitor.lock().expect("SLO monitor poisoned");
        let prev_mode = ServiceMode::from_u8(self.shared.mode.load(Ordering::Relaxed));
        let verdict = monitor.evaluate(&snapshot);
        self.shared
            .mode
            .store(verdict.mode.as_u8(), Ordering::Relaxed);
        self.shared
            .metrics
            .mode
            .set(i64::from(verdict.mode.as_u8()));
        self.shared
            .tracer
            .event("serve_slo_eval", u64::from(verdict.mode.as_u8()));
        let flight = self.shared.flight.lock().expect("flight poisoned").clone();
        if let Some(flight) = flight {
            flight.note_verdict(verdict.summary());
            flight.note_metrics(snapshot);
            if verdict.mode != prev_mode && verdict.mode != ServiceMode::Normal {
                // Entering a non-Normal mode is the postmortem moment:
                // freeze the span rings and dump while the evidence of
                // *why* is still in the windows.
                flight.absorb(self.shared.tracer.drain());
                let reason = match verdict.mode {
                    ServiceMode::Degraded => "slo-degraded",
                    _ => "slo-shedding",
                };
                let _ = flight.dump(reason);
            }
        }
        verdict
    }

    /// Attach a [`FlightRecorder`]: from now on, SLO verdicts and
    /// metric snapshots are journalled into it, completed traces are
    /// retained for postmortems, and a mode transition into
    /// Degraded/Shedding dumps a bundle automatically.
    pub fn attach_flight(&self, flight: Arc<FlightRecorder>) {
        *self.shared.flight.lock().expect("flight poisoned") = Some(flight);
    }

    /// The attached flight recorder, if any.
    pub fn flight(&self) -> Option<Arc<FlightRecorder>> {
        self.shared.flight.lock().expect("flight poisoned").clone()
    }

    /// The service's metrics registry (Prometheus scrape source).
    pub fn registry(&self) -> &Registry {
        &self.shared.registry
    }

    /// The service's span tracer (Chrome trace source).
    pub fn tracer(&self) -> &Tracer {
        &self.shared.tracer
    }

    /// Graceful shutdown: stop admitting, wake and join the workers
    /// (started solves publish before the join), and reclassify every
    /// admitted-but-unstarted request as abandoned. Idempotent —
    /// `Drop` calls it. Returns the settled counters, which satisfy
    /// `admitted == completed + abandoned`.
    pub fn shutdown(&mut self) -> ServiceCounters {
        {
            let mut st = self.shared.sched.lock().expect("scheduler poisoned");
            st.draining = true;
            self.shared.work_ready.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        {
            let mut st = self.shared.sched.lock().expect("scheduler poisoned");
            for cell in st.cells.iter_mut() {
                if cell.pending.take().is_some() {
                    self.shared
                        .counters
                        .abandoned
                        .fetch_add(1, Ordering::Relaxed);
                    self.shared.metrics.abandoned.inc();
                }
            }
            st.pending_count = 0;
            self.shared.metrics.queue_depth.set(0);
        }
        self.counters()
    }
}

impl Drop for CalibrationService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn empty_snapshot() -> CalibrationSnapshot {
    CalibrationSnapshot {
        seq: 0,
        requested_at_s: 0.0,
        wall_us: 0.0,
        calibration: None,
        trace: None,
    }
}

impl CalibrationBackend for CalibrationService {
    fn submit(
        &self,
        cohort: usize,
        now_s: f64,
        profiler: &Profiler,
        compute_speed: f64,
    ) -> SubmitOutcome {
        // The pool's three-way outcome is a projection of the service's
        // five: a replaced payload rides the slot it replaced (the
        // device's request IS pending, so "coalesced" is the honest
        // reading), and both shed flavours are drops.
        match self.submit_request(cohort, now_s, profiler, compute_speed) {
            AdmissionOutcome::Admitted => SubmitOutcome::Enqueued,
            AdmissionOutcome::Coalesced | AdmissionOutcome::Replaced => SubmitOutcome::Coalesced,
            AdmissionOutcome::Shed | AdmissionOutcome::Backpressure => SubmitOutcome::Dropped,
        }
    }

    fn snapshot(&self, cohort: usize) -> Arc<CalibrationSnapshot> {
        self.shared.slots[cohort].snapshot.load_full()
    }

    fn adopt(&self, cohort: usize, snapshot: &CalibrationSnapshot, now_s: f64) {
        let Some(t) = snapshot.trace else { return };
        let slot = &self.shared.slots[cohort];
        // Cohort-mates all adopt the same publication; only the first
        // closes its trace — the critical path ends at the first device
        // the calibration reached, later adopters merely share it.
        let prev = slot
            .last_adopted_seq
            .fetch_max(snapshot.seq, Ordering::AcqRel);
        if prev >= snapshot.seq {
            return;
        }
        let adopt_event = self
            .shared
            .tracer
            .event_in("serve_adopt", snapshot.seq, t.trace);
        self.shared
            .tracer
            .link("serve_adopt_flow", t.publish_span, adopt_event, t.trace);
        let completed = CompletedTrace::new(
            t.trace,
            cohort,
            t.submitted_s,
            t.queue_end_s,
            t.picked_s,
            t.published_s,
            now_s,
        );
        for (hist, phase) in self.shared.metrics.phase.iter().zip(completed.phases()) {
            hist.observe_with_exemplar(phase, t.trace);
        }
        let flight = self.shared.flight.lock().expect("flight poisoned").clone();
        if let Some(flight) = flight {
            flight.note_trace(completed);
        }
    }

    fn cohorts(&self) -> usize {
        self.shared.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capman_device::fsm::Action;
    use capman_device::states::DeviceState;

    fn warm_profiler() -> Profiler {
        let mut profiler = Profiler::new();
        let awake = DeviceState::awake();
        let asleep = DeviceState::asleep();
        for i in 0..40 {
            let power = 1.0 + (i % 5) as f64 * 0.5;
            profiler.observe(asleep, Action::ScreenOn, awake, 0.9, power);
            profiler.observe(awake, Action::TimerTick, awake, 0.9, power);
            profiler.observe(awake, Action::ScreenOff, asleep, 0.9, 0.2);
        }
        profiler
    }

    fn specs(n: usize) -> Vec<CalibratorSpec> {
        (0..n).map(|_| CalibratorSpec::paper()).collect()
    }

    fn manual(n: usize, admission: AdmissionConfig) -> CalibrationService {
        CalibrationService::new(
            &specs(n),
            ServiceConfig {
                admission,
                ..ServiceConfig::default()
            },
        )
    }

    #[test]
    fn admit_solve_publish_round_trip() {
        let service = manual(1, AdmissionConfig::default());
        let profiler = warm_profiler();
        assert_eq!(
            service.submit_request(0, 1200.0, &profiler, 1.0),
            AdmissionOutcome::Admitted
        );
        assert_eq!(service.queue_depth(), 1);
        assert!(service.step(1200.0));
        assert!(!service.step(1200.0), "queue is empty again");
        let snap = CalibrationBackend::snapshot(&service, 0);
        assert_eq!(snap.seq, 1);
        assert!(snap.calibration.is_some());
        assert_eq!(snap.requested_at_s, 1200.0);
        let c = service.counters();
        assert_eq!((c.submitted, c.admitted, c.completed), (1, 1, 1));
    }

    #[test]
    fn replacement_keeps_age_and_refreshes_payload() {
        let service = manual(1, AdmissionConfig::default());
        let profiler = warm_profiler();
        assert_eq!(
            service.submit_request(0, 1000.0, &profiler, 1.0),
            AdmissionOutcome::Admitted
        );
        assert_eq!(
            service.submit_request(0, 1400.0, &profiler, 1.0),
            AdmissionOutcome::Replaced
        );
        assert_eq!(
            service.queue_depth(),
            1,
            "replacement does not grow the queue"
        );
        assert!(service.step(1400.0));
        let snap = CalibrationBackend::snapshot(&service, 0);
        assert_eq!(
            snap.requested_at_s, 1400.0,
            "the solve runs the newest payload"
        );
        // The wait histogram measured from the FIRST submission.
        let hist = service.registry().snapshot();
        let h = hist
            .histograms
            .iter()
            .find(|h| h.name == "serve_staleness_s")
            .expect("staleness histogram registered");
        assert_eq!(h.count, 1);
        assert!(h.sum >= 300.0, "wait measured from 1000 s, not 1400 s");
    }

    #[test]
    fn quota_sheds_and_windows_refresh_it() {
        let service = manual(
            1,
            AdmissionConfig {
                queue_bound: 8,
                quota_per_window: 1,
                window_s: 600.0,
            },
        );
        let profiler = warm_profiler();
        assert_eq!(
            service.submit_request(0, 100.0, &profiler, 1.0),
            AdmissionOutcome::Admitted
        );
        service.run_pending(100.0);
        assert_eq!(
            service.submit_request(0, 200.0, &profiler, 1.0),
            AdmissionOutcome::Shed,
            "window quota of 1 is spent"
        );
        assert_eq!(
            service.submit_request(0, 700.0, &profiler, 1.0),
            AdmissionOutcome::Admitted,
            "next window refreshes the quota"
        );
        let c = service.counters();
        assert_eq!(c.shed, 1);
        assert_eq!(
            c.submitted,
            c.admitted + c.coalesced + c.replaced + c.shed + c.backpressure
        );
    }

    #[test]
    fn queue_bound_backpressure_does_not_burn_quota() {
        let service = manual(
            2,
            AdmissionConfig {
                queue_bound: 1,
                quota_per_window: 1,
                window_s: 600.0,
            },
        );
        let profiler = warm_profiler();
        assert_eq!(
            service.submit_request(0, 100.0, &profiler, 1.0),
            AdmissionOutcome::Admitted
        );
        assert_eq!(
            service.submit_request(1, 100.0, &profiler, 1.0),
            AdmissionOutcome::Backpressure,
            "service-wide bound reached"
        );
        service.run_pending(100.0);
        assert_eq!(
            service.submit_request(1, 101.0, &profiler, 1.0),
            AdmissionOutcome::Admitted,
            "the refused submission did not consume cohort 1's quota"
        );
    }

    #[test]
    fn pick_order_prefers_the_stalest_and_ages_the_passed_over() {
        let service = manual(
            3,
            AdmissionConfig {
                queue_bound: 8,
                quota_per_window: 4,
                window_s: 10_000.0,
            },
        );
        let profiler = warm_profiler();
        // Give cohort 2 a fresh published calibration; 0 and 1 stay at
        // the seq-0 placeholder (infinitely stale → Hot lane).
        service.submit_request(2, 10.0, &profiler, 1.0);
        service.run_pending(10.0);
        for cohort in 0..3 {
            assert_eq!(
                service.submit_request(cohort, 20.0, &profiler, 1.0),
                AdmissionOutcome::Admitted
            );
        }
        // Hot beats Cold: cohorts 0 and 1 (never calibrated) go first,
        // lowest cohort index breaking the tie.
        assert!(service.step(20.0));
        assert_eq!(CalibrationBackend::snapshot(&service, 0).seq, 1);
        assert_eq!(CalibrationBackend::snapshot(&service, 1).seq, 0);
        assert!(service.step(20.0));
        assert_eq!(CalibrationBackend::snapshot(&service, 1).seq, 1);
        assert!(service.step(20.0));
        assert_eq!(CalibrationBackend::snapshot(&service, 2).seq, 2);
        let snap = service.registry().snapshot();
        let picks: u64 = snap
            .counters
            .iter()
            .filter(|(n, _, _)| n.starts_with("serve_lane_"))
            .map(|(_, _, v)| v)
            .sum();
        assert_eq!(picks, 4, "every pick lands on exactly one lane");
    }

    #[test]
    fn threaded_service_drains_on_drop_with_the_identity() {
        let mut service = CalibrationService::new(
            &specs(8),
            ServiceConfig {
                workers: 2,
                admission: AdmissionConfig {
                    queue_bound: 8,
                    quota_per_window: 4,
                    window_s: 600.0,
                },
                ..ServiceConfig::default()
            },
        );
        let profiler = warm_profiler();
        for cohort in 0..8 {
            service.submit_request(cohort, 100.0, &profiler, 1.0);
        }
        let c = service.shutdown();
        assert_eq!(
            c.submitted,
            c.admitted + c.coalesced + c.replaced + c.shed + c.backpressure
        );
        assert_eq!(
            c.admitted,
            c.completed + c.abandoned,
            "every admitted request either published or was abandoned"
        );
        // Published snapshots are complete; abandoned cohorts still hold
        // the seq-0 placeholder.
        for cohort in 0..8 {
            let snap = CalibrationBackend::snapshot(&service, cohort);
            assert_eq!(snap.calibration.is_some(), snap.seq > 0);
        }
        // Post-shutdown submissions are refused, not panicking.
        assert_eq!(
            service.submit_request(0, 200.0, &profiler, 1.0),
            AdmissionOutcome::Backpressure
        );
    }

    #[test]
    fn slo_mode_feeds_back_into_quota() {
        let mut config = ServiceConfig {
            admission: AdmissionConfig {
                queue_bound: 8,
                quota_per_window: 4,
                window_s: 600.0,
            },
            ..ServiceConfig::default()
        };
        // An impossible queue-depth objective so any pending request
        // breaches, with instant escalation.
        config.slo.spec.queue_depth.objective = 0.0;
        config.slo.spec.queue_depth.floor = 0.5;
        config.slo.escalate_after = 1;
        let service = CalibrationService::new(&specs(1), config);
        let profiler = warm_profiler();
        assert_eq!(
            service.submit_request(0, 100.0, &profiler, 1.0),
            AdmissionOutcome::Admitted
        );
        let verdict = service.evaluate_slo();
        assert!(verdict.breached);
        assert_eq!(service.mode(), ServiceMode::Degraded);
        // Shedding mode forces the quota to 1: the cohort spent its
        // admission, so in-window follow-ups shed even though the base
        // quota (4) has room.
        service.evaluate_slo();
        assert_eq!(service.mode(), ServiceMode::Shedding);
        service.run_pending(100.0);
        assert_eq!(
            service.submit_request(0, 150.0, &profiler, 1.0),
            AdmissionOutcome::Shed
        );
    }

    #[test]
    fn backend_projection_maps_the_five_outcomes_to_three() {
        let service = manual(
            1,
            AdmissionConfig {
                queue_bound: 8,
                quota_per_window: 1,
                window_s: 600.0,
            },
        );
        let profiler = warm_profiler();
        let backend: &dyn CalibrationBackend = &service;
        assert_eq!(
            backend.submit(0, 100.0, &profiler, 1.0),
            SubmitOutcome::Enqueued
        );
        assert_eq!(
            backend.submit(0, 110.0, &profiler, 1.0),
            SubmitOutcome::Coalesced,
            "replacement reads as coalesced to the pool-shaped caller"
        );
        service.run_pending(110.0);
        assert_eq!(
            backend.submit(0, 120.0, &profiler, 1.0),
            SubmitOutcome::Dropped,
            "quota shed reads as dropped"
        );
        assert_eq!(backend.cohorts(), 1);
    }
}
