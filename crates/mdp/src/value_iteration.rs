//! Exact Bellman solving (Eqs. 8–9).
//!
//! ```text
//! V*(u) = max_{a in N_u} Q*(a)
//! Q*(a) = sum_u p(a, u) (r(a, u) + rho * V*(u))
//! ```
//!
//! The *Oracle* baseline is built on this solver; the structural-
//! similarity bound of Section III-D is verified against it in tests.
//!
//! # Sweep discipline
//!
//! [`solve`] iterates *Jacobi* sweeps: every state's backup in sweep
//! `k + 1` reads only the value vector of sweep `k`, never a value
//! written earlier in the same sweep. That makes the sweep
//! embarrassingly parallel over disjoint state chunks, and — because
//! each state's backup is the exact same sequence of floating-point
//! operations regardless of which chunk (or thread) computes it — the
//! serial and parallel schedules produce **bit-identical** solutions.
//! The residual is the sup norm of `V_{k+1} - V_k`, reduced with
//! `f64::max` (order-independent for the non-NaN values produced here),
//! so the iteration counts agree too. This is the same determinism
//! contract the similarity engine established for its row sweeps.
//!
//! The sweep itself runs over the MDP's structure-of-arrays solver view
//! (see the layout notes in [`crate::mdp`]): with the expected immediate
//! reward of every action node precomputed, a backup is
//! `max_a R(a) + rho * sum_i p_i * V[succ_i]` — one contiguous pass over
//! the successor/probability arrays, no reward loads, no action-id
//! indirection.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::engine::ExecutionMode;
use crate::mdp::{Mdp, SolverView};

/// States per parallel work unit. Fixed (not derived from the thread
/// count) so the chunk boundaries — and therefore the work partition —
/// are stable across machines; bit-identity does not depend on this, it
/// only keeps scheduling deterministic.
const PAR_CHUNK: usize = 64;

/// Below this state count a parallel sweep costs more in fan-out than
/// it recovers; [`solve`] picks the serial schedule.
const PAR_MIN_STATES: usize = 256;

/// An exact solution of a discounted MDP.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Solution {
    /// Optimal state values `V*`.
    pub values: Vec<f64>,
    /// Optimal action values `Q*[s][a]` (`f64::NEG_INFINITY` where the
    /// action is unavailable).
    pub q: Vec<Vec<f64>>,
    /// Greedy policy: the maximising action per state, `None` for
    /// absorbing states.
    pub policy: Vec<Option<usize>>,
    /// Bellman sweeps performed.
    pub iterations: usize,
}

/// One Jacobi backup of `state`: the best available action value under
/// the previous sweep's `values`, zero when the state is absorbing.
#[inline]
fn backup(view: &SolverView<'_>, rho: f64, values: &[f64], state: usize) -> f64 {
    let mut best = f64::NEG_INFINITY;
    for k in view.action_ptr[state]..view.action_ptr[state + 1] {
        let (lo, hi) = (view.node_ptr[k], view.node_ptr[k + 1]);
        let mut pv = 0.0;
        for (&n, &p) in view.succ[lo..hi].iter().zip(&view.prob[lo..hi]) {
            pv += p * values[n as usize];
        }
        best = best.max(view.node_reward[k] + rho * pv);
    }
    if best.is_finite() {
        best
    } else {
        0.0
    }
}

/// One full Jacobi sweep: `next[s] = backup(s)` for every state, reading
/// only `values`. The parallel schedule deals disjoint `PAR_CHUNK`-state
/// chunks across the cores; per-state arithmetic is identical either
/// way.
fn jacobi_sweep(
    view: &SolverView<'_>,
    rho: f64,
    values: &[f64],
    next: &mut [f64],
    mode: ExecutionMode,
) {
    match mode {
        ExecutionMode::Serial => {
            for (s, slot) in next.iter_mut().enumerate() {
                *slot = backup(view, rho, values, s);
            }
        }
        ExecutionMode::Parallel => {
            next.par_chunks_mut(PAR_CHUNK)
                .enumerate()
                .for_each(|chunk_idx, chunk| {
                    let base = chunk_idx * PAR_CHUNK;
                    for (i, slot) in chunk.iter_mut().enumerate() {
                        *slot = backup(view, rho, values, base + i);
                    }
                });
        }
    }
}

/// Solve the MDP by value iteration to precision `eps` (sup norm of the
/// Bellman residual).
///
/// Absorbing states have value zero, matching the paper's convention that
/// target states terminate the accumulation.
///
/// Dispatches to the parallel sweep on large state spaces when more than
/// one core is available; both schedules return bit-identical solutions
/// (see the module docs), so the dispatch is unobservable apart from
/// wall clock.
///
/// # Panics
///
/// Panics if `rho` is not in `[0, 1)` or `eps` is not positive.
pub fn solve(mdp: &Mdp, rho: f64, eps: f64) -> Solution {
    let mode = if mdp.n_states() >= PAR_MIN_STATES && rayon::current_num_threads() > 1 {
        ExecutionMode::Parallel
    } else {
        ExecutionMode::Serial
    };
    solve_with_mode(mdp, rho, eps, mode)
}

/// [`solve`] with an explicit sweep schedule — the form the equivalence
/// proptests and the `mdp_solve` bench pin down.
///
/// # Panics
///
/// Panics if `rho` is not in `[0, 1)` or `eps` is not positive.
pub fn solve_with_mode(mdp: &Mdp, rho: f64, eps: f64, mode: ExecutionMode) -> Solution {
    assert!((0.0..1.0).contains(&rho), "discount must be in [0, 1)");
    assert!(eps > 0.0, "precision must be positive");
    let n = mdp.n_states();
    let view = mdp.solver_view();
    let mut values = vec![0.0; n];
    let mut next = vec![0.0; n];
    let mut iterations = 0;
    loop {
        iterations += 1;
        jacobi_sweep(&view, rho, &values, &mut next, mode);
        let mut residual: f64 = 0.0;
        for s in 0..n {
            residual = residual.max((next[s] - values[s]).abs());
        }
        std::mem::swap(&mut values, &mut next);
        if residual < eps || iterations > 1_000_000 {
            break;
        }
    }

    // Q*/policy extraction walks only the packed action nodes —
    // unavailable actions default to NEG_INFINITY without probing their
    // empty rows. Each Q value uses the same expected-reward-hoisted
    // arithmetic as the sweep, so Q*, V* and the greedy policy agree
    // bitwise with the nested Jacobi oracle.
    let mut q = vec![Vec::new(); n];
    let mut policy = vec![None; n];
    for s in 0..n {
        let mut row = vec![f64::NEG_INFINITY; mdp.n_actions()];
        for (k, &a) in (view.action_ptr[s]..view.action_ptr[s + 1]).zip(mdp.action_list(s)) {
            let (lo, hi) = (view.node_ptr[k], view.node_ptr[k + 1]);
            let mut pv = 0.0;
            for (&nx, &p) in view.succ[lo..hi].iter().zip(&view.prob[lo..hi]) {
                pv += p * values[nx as usize];
            }
            row[a as usize] = view.node_reward[k] + rho * pv;
        }
        policy[s] = mdp
            .available_actions(s)
            .max_by(|&a, &b| row[a].total_cmp(&row[b]));
        q[s] = row;
    }

    Solution {
        values,
        q,
        policy,
        iterations,
    }
}

/// Evaluate a fixed (deterministic) policy's state values.
///
/// States where the policy provides no action (or an unavailable one)
/// are treated as absorbing.
///
/// # Panics
///
/// Panics if `rho` is not in `[0, 1)` or `eps` is not positive, or the
/// policy is shorter than the state space.
pub fn evaluate_policy(mdp: &Mdp, policy: &[Option<usize>], rho: f64, eps: f64) -> Vec<f64> {
    assert!((0.0..1.0).contains(&rho), "discount must be in [0, 1)");
    assert!(eps > 0.0, "precision must be positive");
    assert!(policy.len() >= mdp.n_states(), "policy too short");
    let n = mdp.n_states();
    let mut values = vec![0.0; n];
    loop {
        let mut residual: f64 = 0.0;
        for s in 0..n {
            let new = match policy[s] {
                Some(a) if !mdp.outcomes(s, a).is_empty() => mdp
                    .outcomes(s, a)
                    .iter()
                    .map(|o| o.prob * (o.reward + rho * values[o.next]))
                    .sum(),
                _ => 0.0,
            };
            residual = residual.max((new - values[s]).abs());
            values[s] = new;
        }
        if residual < eps {
            return values;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mdp::MdpBuilder;

    fn two_armed() -> Mdp {
        // State 0 chooses between a low arm (r=0.2) and a high arm
        // (r=0.9), both leading to the absorbing state 1.
        let mut b = MdpBuilder::new(2, 2);
        b.transition(0, 0, 1, 1.0, 0.2);
        b.transition(0, 1, 1, 1.0, 0.9);
        b.build()
    }

    #[test]
    fn picks_the_better_arm() {
        let sol = solve(&two_armed(), 0.9, 1e-10);
        assert_eq!(sol.policy[0], Some(1));
        assert!((sol.values[0] - 0.9).abs() < 1e-9);
        assert_eq!(sol.values[1], 0.0);
        assert_eq!(sol.policy[1], None);
    }

    #[test]
    fn geometric_series_on_a_self_loop() {
        // A self-loop with reward 1 has value 1/(1-rho).
        let mut b = MdpBuilder::new(1, 1);
        b.transition(0, 0, 0, 1.0, 1.0);
        let m = b.build();
        let rho = 0.8;
        let sol = solve(&m, rho, 1e-12);
        assert!((sol.values[0] - 1.0 / (1.0 - rho)).abs() < 1e-6);
    }

    #[test]
    fn values_bounded_by_one_over_one_minus_rho() {
        // With rewards in [0,1], V* <= 1/(1-rho) always.
        let mut b = MdpBuilder::new(4, 3);
        b.transition(0, 0, 1, 0.5, 1.0);
        b.transition(0, 0, 2, 0.5, 0.7);
        b.transition(1, 1, 0, 1.0, 0.9);
        b.transition(2, 2, 3, 1.0, 1.0);
        b.transition(3, 0, 0, 1.0, 1.0);
        let m = b.build();
        let rho = 0.95;
        let sol = solve(&m, rho, 1e-10);
        for v in &sol.values {
            assert!(*v <= 1.0 / (1.0 - rho) + 1e-6);
            assert!(*v >= 0.0);
        }
    }

    #[test]
    fn policy_evaluation_matches_optimal_for_optimal_policy() {
        let m = two_armed();
        let sol = solve(&m, 0.9, 1e-10);
        let v = evaluate_policy(&m, &sol.policy, 0.9, 1e-10);
        for (a, b) in v.iter().zip(&sol.values) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn suboptimal_policy_has_lower_value() {
        let m = two_armed();
        let v = evaluate_policy(&m, &[Some(0), None], 0.9, 1e-10);
        assert!((v[0] - 0.2).abs() < 1e-9);
    }

    #[test]
    fn stochastic_transitions_average_rewards() {
        let mut b = MdpBuilder::new(3, 1);
        b.transition(0, 0, 1, 0.5, 0.0);
        b.transition(0, 0, 2, 0.5, 1.0);
        let sol = solve(&b.build(), 0.5, 1e-12);
        assert!((sol.values[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn higher_discount_raises_values_on_recurrent_chains() {
        let mut b = MdpBuilder::new(2, 1);
        b.transition(0, 0, 1, 1.0, 0.5);
        b.transition(1, 0, 0, 1.0, 0.5);
        let m = b.build();
        let lo = solve(&m, 0.5, 1e-12).values[0];
        let hi = solve(&m, 0.95, 1e-12).values[0];
        assert!(hi > lo);
    }

    #[test]
    #[should_panic(expected = "discount")]
    fn rejects_discount_of_one() {
        let _ = solve(&two_armed(), 1.0, 1e-6);
    }

    /// A deterministic pseudo-random MDP big enough to span several
    /// parallel chunks (and a ragged tail chunk).
    fn chunky_mdp(n_states: usize) -> Mdp {
        let mut b = MdpBuilder::new(n_states, 4);
        let mut x: u64 = 0x9e3779b97f4a7c15;
        let mut rand = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for s in 0..n_states - 1 {
            for a in 0..4 {
                if rand() % 4 == 0 {
                    continue; // leave some actions unavailable
                }
                for _ in 0..1 + rand() % 3 {
                    let next = (rand() as usize) % n_states;
                    let w = 1.0 + (rand() % 100) as f64 / 10.0;
                    let r = (rand() % 1000) as f64 / 1000.0;
                    b.transition(s, a, next, w, r);
                }
            }
        }
        b.build()
    }

    #[test]
    fn parallel_schedule_is_bit_identical_to_serial() {
        let m = chunky_mdp(3 * PAR_CHUNK + 17);
        for rho in [0.5, 0.95] {
            let serial = solve_with_mode(&m, rho, 1e-9, ExecutionMode::Serial);
            let parallel = solve_with_mode(&m, rho, 1e-9, ExecutionMode::Parallel);
            assert_eq!(serial.iterations, parallel.iterations);
            assert_eq!(serial.policy, parallel.policy);
            for (a, b) in serial.values.iter().zip(&parallel.values) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn auto_dispatch_matches_explicit_modes() {
        let m = chunky_mdp(300);
        let auto = solve(&m, 0.9, 1e-9);
        let serial = solve_with_mode(&m, 0.9, 1e-9, ExecutionMode::Serial);
        for (a, b) in auto.values.iter().zip(&serial.values) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
