//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset of the rand 0.8 surface this workspace uses —
//! `StdRng`, `SeedableRng::seed_from_u64`, and the `Rng` extension
//! methods `gen`, `gen_range`, `gen_bool` — on top of a real
//! xoshiro256++ generator (SplitMix64-seeded, the reference seeding
//! scheme). Statistical quality is good enough for the simulation and
//! the convergence/frequency tests in this repository; the API is
//! source-compatible so the real crate can be dropped back in.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their full domain (the `Standard`
/// distribution of real rand).
pub trait StandardSample {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled element type.
    type Output;
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform `u64` below `bound` (Lemire's multiply-shift; the bias of at
/// most `bound / 2^64` is irrelevant at the scales used here).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
range_float!(f32, f64);

/// The user-facing extension methods of rand's `Rng`.
pub trait Rng: RngCore {
    /// A value drawn from the full domain of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A value drawn uniformly from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the workhorse generator of the stand-in.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro
            // authors for seeding from a single word.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn float_range_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lo_half = 0usize;
        for _ in 0..10_000 {
            let x = rng.gen_range(2.0..5.0);
            assert!((2.0..5.0).contains(&x));
            if x < 3.5 {
                lo_half += 1;
            }
        }
        assert!((3000..7000).contains(&lo_half), "lo_half = {lo_half}");
    }

    #[test]
    fn int_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 6];
        for _ in 0..60_000 {
            counts[rng.gen_range(0..6usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "counts = {counts:?}");
        }
    }

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut saw = [false; 3];
        for _ in 0..1_000 {
            saw[rng.gen_range(0u8..=2) as usize] = true;
        }
        assert!(saw.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }
}
