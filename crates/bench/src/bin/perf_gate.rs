//! Cross-PR perf regression gate over the committed `BENCH_*.json`
//! reports — statistically rigorous edition.
//!
//! ```text
//! # File mode: committed baseline vs freshly regenerated report.
//! perf_gate <committed.json> <fresh.json> [--alpha 0.05] [--min-effect 0.05]
//!           [--max-slowdown 1.30] [--min-ms 0.25]
//!
//! # Live mode (no positionals): interleaved A/B arms in-process.
//! perf_gate [--alpha 0.05] [--reps 10] [--ab-slowdown 1.0] [--ab-seed N]
//! ```
//!
//! In file mode, CI regenerates a benchmark report and compares it
//! against the committed one at matching fixture sizes. Rows that carry
//! per-rep sample arrays (`"<metric>_samples"`) get a one-sided Welch's
//! t-test: FAIL only when the slowdown is statistically credible
//! (`p < alpha`) *and* practically large (mean ratio above the
//! `--min-effect` floor). Legacy rows without samples fall back to the
//! old point-ratio rule against `--max-slowdown`. The gated metrics and
//! floor semantics live in [`capman_bench::gate`].
//!
//! In live mode the binary measures its own baseline/candidate arms
//! back-to-back (the serial CSR solver on the 512-state fixture),
//! interleaved so machine load hits both arms alike, and judges them
//! with the same machinery. `--ab-slowdown 1.0` is the A/A sanity
//! check; `--ab-seed` swaps wall-clock timing for a seeded synthetic
//! distribution so the check is deterministic.
//!
//! Exit codes: `0` pass or clean skip (missing report, no matched
//! rows), `1` regression, `2` usage error, `3` a report **exists but is
//! not valid JSON** — a corrupt baseline must not silently disable the
//! gate.

use capman_bench::gate::{self, GateConfig, GateOutcome};
use capman_bench::mdp_fixtures::{build_csr, device_like_transitions};
use capman_mdp::value_iteration::solve_with_mode;
use capman_mdp::ExecutionMode;

const USAGE: &str = "usage: perf_gate <committed.json> <fresh.json> \
     [--alpha 0.05] [--min-effect 0.05] [--max-slowdown 1.30] [--min-ms 0.25]\n\
     \x20      perf_gate [--alpha 0.05] [--reps 10] [--ab-slowdown 1.0] [--ab-seed N]";

struct Args {
    positional: Vec<String>,
    cfg: GateConfig,
    reps: usize,
    ab_slowdown: f64,
    ab_seed: Option<u64>,
}

fn parse_args() -> Args {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let value_of = |name: &str| -> Option<&String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
    };
    let flag = |name: &str, default: f64| -> f64 {
        value_of(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let positional: Vec<String> = {
        // Strip flag pairs to recover the file paths, if any.
        let mut skip_next = false;
        args.iter()
            .filter(|a| {
                if skip_next {
                    skip_next = false;
                    return false;
                }
                if a.starts_with("--") {
                    skip_next = true;
                    return false;
                }
                true
            })
            .cloned()
            .collect()
    };
    let defaults = GateConfig::default();
    Args {
        positional,
        cfg: GateConfig {
            alpha: flag("--alpha", defaults.alpha),
            min_effect: flag("--min-effect", defaults.min_effect),
            max_slowdown: flag("--max-slowdown", defaults.max_slowdown),
            floor: flag("--min-ms", defaults.floor),
        },
        reps: flag("--reps", 10.0) as usize,
        ab_slowdown: flag("--ab-slowdown", 1.0),
        ab_seed: value_of("--ab-seed").and_then(|v| v.parse().ok()),
    }
}

/// Read a report, or skip the whole gate cleanly when it is absent — a
/// missing file means "no baseline yet", not "regression".
fn read_or_skip(path: &str, role: &str) -> String {
    match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            println!("perf_gate: SKIP — {role} report {path} unreadable ({e}); nothing to gate");
            std::process::exit(0);
        }
    }
}

fn print_outcome(outcome: &GateOutcome) {
    for note in &outcome.notes {
        println!("{note}");
    }
    for row in &outcome.rows {
        println!("{}: {} {}", row.context, row.detail, row.verdict.label());
    }
}

fn finish(outcome: &GateOutcome, skip_note: Option<String>) -> ! {
    print_outcome(outcome);
    if outcome.compared == 0 {
        if let Some(note) = skip_note {
            println!("{note}");
        }
        std::process::exit(0);
    }
    if outcome.failures > 0 {
        eprintln!("perf_gate: {} gated metric(s) regressed", outcome.failures);
        std::process::exit(1);
    }
    println!(
        "perf_gate: all {} gated metrics within limits",
        outcome.compared
    );
    std::process::exit(0);
}

/// Live-mode sampler: one serial CSR solve of the 512-state device
/// fixture, milliseconds.
fn solver_sampler() -> impl FnMut() -> f64 {
    const STATES: usize = 512;
    let csr = build_csr(STATES, &device_like_transitions(STATES, 42));
    move || {
        let t0 = std::time::Instant::now();
        let out = solve_with_mode(&csr, 0.95, 1e-9, ExecutionMode::Serial);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        drop(out);
        ms
    }
}

fn main() {
    let args = parse_args();
    match args.positional.len() {
        0 => {
            if args.reps < 2 {
                eprintln!("perf_gate: live mode needs --reps >= 2");
                std::process::exit(2);
            }
            let outcome = match args.ab_seed {
                Some(seed) => gate::live_ab(
                    args.reps,
                    args.ab_slowdown,
                    &args.cfg,
                    gate::synthetic_sampler(seed),
                ),
                None => gate::live_ab(args.reps, args.ab_slowdown, &args.cfg, solver_sampler()),
            };
            finish(&outcome, None);
        }
        2 => {
            let committed = read_or_skip(&args.positional[0], "committed");
            let fresh = read_or_skip(&args.positional[1], "fresh");
            let outcome = match gate::evaluate_reports(&committed, &fresh, &args.cfg) {
                Ok(outcome) => outcome,
                Err(e) => {
                    eprintln!("perf_gate: CORRUPT — {e}");
                    std::process::exit(3);
                }
            };
            let skip = format!(
                "perf_gate: SKIP — no gated rows matched between {} and {} \
                 (new report shape, or disjoint fixture sizes); nothing to gate",
                args.positional[0], args.positional[1]
            );
            finish(&outcome, Some(skip));
        }
        _ => {
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    }
}
