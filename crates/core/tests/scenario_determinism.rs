//! The scenario runner's determinism contract, exercised end to end.
//!
//! The fleet runner (and every figure harness) leans on one guarantee:
//! `ScenarioRunner::run` returns exactly what a serial pass over the
//! same scenarios would — same outcomes, same order — no matter how the
//! scenarios are dealt across cores. `Outcome` is `PartialEq` over
//! every field (floats compared exactly), so after masking the only
//! honest exceptions — wall-clock measurements (scheduler overhead,
//! per-calibration engine wall time), which depend on the machine, not
//! the simulation — the equality below is a bit-identity claim, not an
//! approximation.

use capman_core::config::SimConfig;
use capman_core::experiments::PolicyKind;
use capman_core::metrics::Outcome;
use capman_core::online::CalibratorSpec;
use capman_core::scenario::{Scenario, ScenarioRunner};
use capman_core::telemetry::{CalibrationSample, Telemetry};
use capman_device::phone::PhoneProfile;
use capman_workload::WorkloadKind;

/// The outcome with its wall-clock timing fields zeroed; everything
/// else (every simulated quantity, every telemetry sample, every
/// calibration's sweep/solve/staleness ledger) must match exactly.
fn masked(outcome: &Outcome) -> Outcome {
    let mut telemetry = Telemetry::new();
    for sample in outcome.telemetry.samples() {
        telemetry.push(*sample);
    }
    for calibration in outcome.telemetry.calibrations() {
        telemetry.push_calibration(CalibrationSample {
            wall_us: 0.0,
            ..calibration.clone()
        });
    }
    Outcome {
        scheduler_overhead_us: 0.0,
        telemetry,
        ..outcome.clone()
    }
}

fn scenario(kind: PolicyKind, workload: WorkloadKind, seed: u64) -> Scenario {
    let config = SimConfig {
        max_horizon_s: 1200.0,
        tec_enabled: kind.has_tec(),
        ..SimConfig::paper()
    };
    Scenario::new(kind, workload, PhoneProfile::nexus(), seed, config)
}

/// A mixed (trace x policy) batch: different policies, workloads, seeds
/// and horizons, so completion times differ and any schedule-dependent
/// reordering or cross-scenario leakage would show.
fn mixed_batch() -> Vec<Scenario> {
    let mut capman = scenario(PolicyKind::Capman, WorkloadKind::Pcmark, 11);
    // Calibrate within the short horizon so the calibration path is in
    // the comparison too.
    capman = capman.with_calibrator(CalibratorSpec {
        every_s: 400.0,
        ..CalibratorSpec::paper()
    });
    let mut long_dual = scenario(PolicyKind::Dual, WorkloadKind::Video, 7);
    long_dual.config.max_horizon_s = 2400.0;
    vec![
        capman,
        long_dual,
        scenario(PolicyKind::Practice, WorkloadKind::Video, 7),
        scenario(PolicyKind::Heuristic, WorkloadKind::Geekbench, 13),
        scenario(PolicyKind::Dual, WorkloadKind::Pcmark, 5),
        scenario(PolicyKind::Heuristic, WorkloadKind::Video, 5),
    ]
}

#[test]
fn parallel_outcomes_are_bit_identical_to_serial_in_input_order() {
    let scenarios = mixed_batch();
    let serial = ScenarioRunner::serial().run(&scenarios);
    let parallel = ScenarioRunner::new().run(&scenarios);
    assert_eq!(serial.len(), parallel.len());
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(
            masked(s),
            masked(p),
            "scenario {i}: parallel fan-out must reproduce the serial pass exactly"
        );
    }
    // Order follows input, not completion: the outcomes line up with
    // the scenarios that produced them.
    let expected = [
        "CAPMAN",
        "Dual",
        "Practice",
        "Heuristic",
        "Dual",
        "Heuristic",
    ];
    for (i, (outcome, name)) in parallel.iter().zip(expected).enumerate() {
        assert_eq!(outcome.policy, name, "slot {i} must hold scenario {i}");
    }
}

#[test]
fn repeated_runs_are_reproducible() {
    let scenarios = mixed_batch();
    let runner = ScenarioRunner::new();
    let first = runner.run(&scenarios);
    let second = runner.run(&scenarios);
    for (f, s) in first.iter().zip(&second) {
        assert_eq!(
            masked(f),
            masked(s),
            "same scenarios, same outcomes, every time"
        );
    }
}
