//! Sweep execution: expand the (task × variant × rep) grid into trial
//! cells, run them, and write one `result.json` per trial.
//!
//! Scenario cells are batched through [`ScenarioRunner`], so a whole
//! experiment fans out across cores in one schedule while outcomes stay
//! index-ordered (the runner's determinism contract). Fleet cells run
//! one after another — each [`FleetRunner`] is internally parallel
//! already, and interleaving two fleets would have them fight over the
//! same cores and corrupt each other's wall-clock objective.
//!
//! Scenario construction mirrors the evaluation defaults exactly
//! (`config = paper_with_tec()` iff the effective TEC flag is on): an
//! experiment whose variants are just the five policies reproduces the
//! fig12 grid number-for-number, which `examples/lab/fig12` pins in a
//! test.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use capman_core::config::SimConfig;
use capman_core::experiments::PolicyKind;
use capman_core::metrics::{EndReason, Outcome};
use capman_core::online::CalibratorSpec;
use capman_core::scenario::{Scenario, ScenarioRunner};
use capman_fleet::{
    ArenaConfig, ArenaRunner, CalibrationBackend, Fleet, FleetConfig, FleetPlan, FleetProfile,
    FleetRunner, PoolConfig,
};
use capman_serve::{CalibrationService, ServiceConfig};

use crate::spec::{ExperimentSpec, Task, TaskKind, Variant};
use crate::trial::{TrialOutcome, TrialResult};

/// Compressed-fixture horizon for fleet tasks that do not pin their
/// own: a 25-minute discharge packs several calibration intervals while
/// keeping thousands of devices sweepable (same rationale as
/// `bench_fleet`).
pub const FLEET_DEFAULT_HORIZON_S: f64 = 1500.0;

/// One cell of the sweep grid, fully resolved and ready to execute.
#[derive(Debug, Clone)]
pub struct Cell {
    /// `t{task:03}-v{variant:02}-r{rep:02}`.
    pub trial_id: String,
    /// Index into the task list.
    pub task: usize,
    /// Index into the variant list.
    pub variant: usize,
    /// Repetition index.
    pub rep: usize,
    /// The seed this cell runs with.
    pub seed: u64,
}

/// Expand the full (task × variant × rep) grid in a fixed order: tasks
/// outermost, then variants, then reps. Each rep shifts the cell seed
/// by one so repeats see distinct traces while staying reproducible.
pub fn plan(spec: &ExperimentSpec, tasks: &[Task]) -> Vec<Cell> {
    let mut cells = Vec::with_capacity(tasks.len() * spec.variants.len() * spec.repeats);
    for (t, task) in tasks.iter().enumerate() {
        for v in 0..spec.variants.len() {
            for rep in 0..spec.repeats {
                cells.push(Cell {
                    trial_id: format!("t{t:03}-v{v:02}-r{rep:02}"),
                    task: t,
                    variant: v,
                    rep,
                    seed: task.seed.unwrap_or(spec.base_seed) + rep as u64,
                });
            }
        }
    }
    cells
}

/// The scenario a cell resolves to — identical construction to the
/// evaluation's own default scenarios, so sweep numbers match figure
/// numbers exactly.
fn build_scenario(
    spec: &ExperimentSpec,
    task: &Task,
    variant: &Variant,
    seed: u64,
) -> Option<Scenario> {
    let TaskKind::Scenario { workload, phone } = &task.kind else {
        return None;
    };
    let tec = variant.tec.unwrap_or(variant.policy.has_tec());
    let mut config = if tec {
        SimConfig::paper_with_tec()
    } else {
        SimConfig::paper()
    };
    if let Some(h) = task.horizon_s.or(variant.horizon_s).or(spec.horizon_s) {
        config.max_horizon_s = h;
    }
    let mut scenario = Scenario::new(variant.policy, *workload, phone.clone(), seed, config);
    if let Some(cal) = variant.calibrator {
        scenario = scenario.with_calibrator(cal);
    }
    Some(scenario)
}

/// Reduce a scenario outcome to its trial result. The objective is the
/// paper's headline metric (service time); sustained shortfall reads as
/// `failure` — the run completed but the device failed its service
/// contract.
fn scenario_result(cell: &Cell, task: &Task, variant: &Variant, o: &Outcome) -> TrialResult {
    let outcome = match o.end_reason {
        EndReason::SustainedShortfall => TrialOutcome::Failure,
        EndReason::PackDepleted | EndReason::HorizonReached => TrialOutcome::Success,
    };
    TrialResult {
        trial_id: cell.trial_id.clone(),
        task_id: task.id.clone(),
        variant: variant.name.clone(),
        rep: cell.rep,
        seed: cell.seed,
        outcome,
        objective_name: "service_time_s".into(),
        objective: o.service_time_s,
        metrics: vec![
            ("work_served".into(), o.work_served),
            ("energy_delivered_j".into(), o.energy_delivered_j),
            ("energy_heat_j".into(), o.energy_heat_j),
            ("switches".into(), o.switches as f64),
            ("big_active_s".into(), o.big_active_s),
            ("little_active_s".into(), o.little_active_s),
            ("tec_on_s".into(), o.tec_on_s),
            ("tec_energy_j".into(), o.tec_energy_j),
            ("max_hotspot_c".into(), o.max_hotspot_c),
            ("mean_hotspot_c".into(), o.mean_hotspot_c),
            ("scheduler_overhead_us".into(), o.scheduler_overhead_us),
            ("recalibrations".into(), o.recalibrations as f64),
        ],
    }
}

/// Run one fleet cell. The objective is fleet throughput
/// (devices per second of wall clock).
fn run_fleet_cell(
    cell: &Cell,
    task: &Task,
    variant: &Variant,
    spec: &ExperimentSpec,
) -> TrialResult {
    let TaskKind::Fleet {
        devices,
        workloads,
        every_s,
    } = &task.kind
    else {
        unreachable!("fleet cells carry fleet tasks");
    };
    let base = TrialResult {
        trial_id: cell.trial_id.clone(),
        task_id: task.id.clone(),
        variant: variant.name.clone(),
        rep: cell.rep,
        seed: cell.seed,
        outcome: TrialOutcome::Success,
        objective_name: "devices_per_s".into(),
        objective: 0.0,
        metrics: Vec::new(),
    };
    // Fleet profiles are CAPMAN cohorts; a sweep that crosses a
    // non-CAPMAN variant with a fleet task yields a per-trial error,
    // not a dead experiment.
    if variant.policy != PolicyKind::Capman {
        return TrialResult {
            outcome: TrialOutcome::Error(format!(
                "fleet tasks require the CAPMAN policy, variant {:?} runs {}",
                variant.name,
                variant.policy.label()
            )),
            ..base
        };
    }
    let horizon = task
        .horizon_s
        .or(variant.horizon_s)
        .or(spec.horizon_s)
        .unwrap_or(FLEET_DEFAULT_HORIZON_S);
    let mut calibrator = variant.calibrator.unwrap_or_else(CalibratorSpec::paper);
    if let Some(e) = every_s {
        calibrator.every_s = *e;
    }
    let profiles: Vec<FleetProfile> = workloads
        .iter()
        .enumerate()
        .map(|(cohort, &w)| {
            // Distinct, reproducible per-cohort seed streams.
            let mut p = FleetProfile::capman(
                w.label().to_lowercase(),
                w,
                cell.seed.wrapping_add(2 * cohort as u64),
            );
            p.config.max_horizon_s = horizon;
            p.calibrator = calibrator;
            p
        })
        .collect();
    let pool = PoolConfig {
        workers: 2,
        queue_depth: 64,
    };
    // `serve: true` arms run the arena fleet against a resident
    // calibration service — admission quotas, priority lanes, SLO
    // modes — instead of an in-process pool, so a sweep can A/B
    // "every request solved" against "admission-controlled service"
    // on any fleet task. `arena: true` arms run the identical fleet
    // through the structure-of-arrays path (same numbers, bounded
    // memory), so a sweep can A/B the two runners on any fleet task.
    let result = if variant.serve {
        let specs: Vec<CalibratorSpec> = profiles.iter().map(|p| p.calibrator).collect();
        let mut service_config = ServiceConfig {
            workers: pool.workers,
            ..ServiceConfig::default()
        };
        // Quota windows follow the cohorts' calibration cadence, so
        // "one admission per window" means one per due interval.
        service_config.admission.window_s = calibrator.every_s;
        let service = Arc::new(CalibrationService::new(&specs, service_config));
        let backend: Arc<dyn CalibrationBackend> = Arc::clone(&service) as _;
        let mut result = ArenaRunner::new(ArenaConfig {
            mode: variant.calibration,
            pool,
            ..ArenaConfig::default()
        })
        .run_with_backend(
            &FleetPlan::new(profiles, devices / workloads.len()),
            backend,
        );
        // Project the service ledger onto the pool counters the result
        // row already reports (the same three-outcome surface every
        // backend shares), so analysis tables read uniformly.
        let c = service.counters();
        result.aggregate.pool.submitted = c.submitted;
        result.aggregate.pool.enqueued = c.admitted;
        result.aggregate.pool.coalesced = c.coalesced + c.replaced;
        result.aggregate.pool.dropped = c.shed + c.backpressure;
        result.aggregate.pool.completed = c.completed;
        result
    } else if variant.arena {
        ArenaRunner::new(ArenaConfig {
            mode: variant.calibration,
            pool,
            ..ArenaConfig::default()
        })
        .run(&FleetPlan::new(profiles, devices / workloads.len()))
    } else {
        FleetRunner::new(FleetConfig {
            mode: variant.calibration,
            batch: 64,
            pool,
            parallel: true,
        })
        .run(&Fleet::build(profiles, devices / workloads.len()))
    };
    let a = &result.aggregate;
    TrialResult {
        objective: a.devices_per_s(),
        metrics: vec![
            ("devices".into(), a.devices as f64),
            ("ticks".into(), a.ticks as f64),
            ("recalibrations".into(), a.recalibrations as f64),
            ("wall_ms".into(), a.wall_ms),
            ("lifetime_p50_s".into(), a.lifetime_s.p50()),
            ("lifetime_p95_s".into(), a.lifetime_s.p95()),
            ("hotspot_p95_c".into(), a.hotspot_c.p95()),
            ("staleness_p99_s".into(), a.staleness_s.p99()),
            ("pool_coalesced".into(), a.pool.coalesced as f64),
            ("pool_dropped".into(), a.pool.dropped as f64),
        ],
        ..base
    }
}

/// Execute every cell of the sweep in memory (no filesystem traffic).
/// Results come back in [`plan`] order.
pub fn run_experiment(spec: &ExperimentSpec, tasks: &[Task]) -> Vec<TrialResult> {
    let cells = plan(spec, tasks);
    // Batch every scenario cell through one ScenarioRunner schedule.
    let mut scenario_cells = Vec::new();
    let mut scenarios = Vec::new();
    for (i, cell) in cells.iter().enumerate() {
        let task = &tasks[cell.task];
        let variant = &spec.variants[cell.variant];
        if let Some(s) = build_scenario(spec, task, variant, cell.seed) {
            scenario_cells.push(i);
            scenarios.push(s);
        }
    }
    let outcomes = ScenarioRunner::new().run(&scenarios);

    let mut results: Vec<Option<TrialResult>> = vec![None; cells.len()];
    for (slot, outcome) in scenario_cells.iter().zip(&outcomes) {
        let cell = &cells[*slot];
        results[*slot] = Some(scenario_result(
            cell,
            &tasks[cell.task],
            &spec.variants[cell.variant],
            outcome,
        ));
    }
    for (i, cell) in cells.iter().enumerate() {
        if results[i].is_none() {
            results[i] = Some(run_fleet_cell(
                cell,
                &tasks[cell.task],
                &spec.variants[cell.variant],
                spec,
            ));
        }
    }
    results
        .into_iter()
        .map(|r| r.expect("every cell produced a result"))
        .collect()
}

/// Write one `result.json` per trial under `<out_dir>/trials/<trial_id>/`.
pub fn write_results(results: &[TrialResult], out_dir: &Path) -> Result<(), String> {
    for r in results {
        let dir = out_dir.join("trials").join(&r.trial_id);
        fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        let path = dir.join("result.json");
        fs::write(&path, r.to_json().to_pretty())
            .map_err(|e| format!("{}: {e}", path.display()))?;
    }
    Ok(())
}

/// Read every `trials/*/result.json` under `out_dir` back, sorted by
/// trial id — the pure-filesystem path analysis tooling uses.
pub fn read_results(out_dir: &Path) -> Result<Vec<TrialResult>, String> {
    let trials = out_dir.join("trials");
    let mut dirs: Vec<PathBuf> = fs::read_dir(&trials)
        .map_err(|e| format!("{}: {e}", trials.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    let mut results = Vec::new();
    for dir in dirs {
        let path = dir.join("result.json");
        let src = fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        results.push(TrialResult::parse(&src).map_err(|e| format!("{}: {e}", path.display()))?);
    }
    Ok(results)
}

/// Run the sweep and persist it: trials under `<out_dir>/trials/`, the
/// spec echo under `<out_dir>/experiment.json`.
pub fn run_to_dir(
    spec: &ExperimentSpec,
    tasks: &[Task],
    out_dir: &Path,
) -> Result<Vec<TrialResult>, String> {
    let results = run_experiment(spec, tasks);
    fs::create_dir_all(out_dir).map_err(|e| format!("{}: {e}", out_dir.display()))?;
    write_results(&results, out_dir)?;
    let manifest = crate::json::obj(vec![
        ("name", crate::json::Json::Str(spec.name.clone())),
        (
            "description",
            crate::json::Json::Str(spec.description.clone()),
        ),
        ("repeats", crate::json::Json::Num(spec.repeats as f64)),
        ("base_seed", crate::json::Json::Num(spec.base_seed as f64)),
        ("tasks", crate::json::Json::Num(tasks.len() as f64)),
        (
            "variants",
            crate::json::Json::Arr(
                spec.variants
                    .iter()
                    .map(|v| crate::json::Json::Str(v.name.clone()))
                    .collect(),
            ),
        ),
        ("trials", crate::json::Json::Num(results.len() as f64)),
    ]);
    let manifest_path = out_dir.join("experiment.json");
    fs::write(&manifest_path, manifest.to_pretty())
        .map_err(|e| format!("{}: {e}", manifest_path.display()))?;
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ExperimentSpec, Task};

    fn spec(yaml: &str) -> ExperimentSpec {
        ExperimentSpec::from_yaml(yaml).expect("valid spec")
    }

    fn short_spec() -> ExperimentSpec {
        spec(
            "name: smoke\n\
             design:\n  repeats: 2\n  base_seed: 11\n\
             runtime:\n  horizon_s: 900\n\
             variants:\n\
             \x20 - name: dual\n    policy: Dual\n\
             \x20 - name: practice\n    policy: Practice\n",
        )
    }

    fn tasks(jsonl: &str) -> Vec<Task> {
        Task::from_jsonl(jsonl).expect("valid tasks")
    }

    #[test]
    fn plan_enumerates_the_full_grid_in_order() {
        let spec = short_spec();
        let ts = tasks("{\"task_id\": \"a\"}\n{\"task_id\": \"b\", \"seed\": 99}\n");
        let cells = plan(&spec, &ts);
        assert_eq!(cells.len(), 2 * 2 * 2);
        assert_eq!(cells[0].trial_id, "t000-v00-r00");
        assert_eq!(cells[0].seed, 11);
        assert_eq!(cells[1].trial_id, "t000-v00-r01");
        assert_eq!(cells[1].seed, 12, "reps shift the seed");
        assert_eq!(cells[4].trial_id, "t001-v00-r00");
        assert_eq!(cells[4].seed, 99, "task seed wins over base seed");
    }

    #[test]
    fn scenario_trials_match_direct_scenario_runs() {
        let spec = short_spec();
        let ts = tasks("{\"task_id\": \"video\", \"workload\": \"video\"}\n");
        let results = run_experiment(&spec, &ts);
        assert_eq!(results.len(), 4);
        // Reproduce trial t000-v00-r01 (Dual, rep 1 → seed 12) directly.
        let config = SimConfig {
            max_horizon_s: 900.0,
            ..SimConfig::paper()
        };
        let direct = Scenario::new(
            PolicyKind::Dual,
            capman_workload::WorkloadKind::Video,
            capman_device::phone::PhoneProfile::nexus(),
            12,
            config,
        )
        .run();
        let trial = &results[1];
        assert_eq!(trial.variant, "dual");
        assert_eq!(trial.seed, 12);
        assert_eq!(trial.objective, direct.service_time_s, "exact reproduction");
        assert_eq!(trial.metric("work_served"), Some(direct.work_served));
    }

    #[test]
    fn results_round_trip_through_the_filesystem() {
        let spec = short_spec();
        let ts = tasks("{\"task_id\": \"v\", \"workload\": \"video\"}\n");
        let dir = std::env::temp_dir().join(format!("capman-lab-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let written = run_to_dir(&spec, &ts, &dir).expect("run to dir");
        let read = read_results(&dir).expect("read back");
        assert_eq!(written, read, "result.json round-trips exactly");
        assert!(dir.join("experiment.json").exists());
        assert!(dir.join("trials/t000-v00-r00/result.json").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fleet_cells_report_throughput_and_non_capman_errors() {
        let spec = spec(
            "name: fleet-smoke\n\
             variants:\n\
             \x20 - name: pool\n    policy: CAPMAN\n\
             \x20 - name: dual\n    policy: Dual\n",
        );
        let ts = tasks(
            "{\"task_id\": \"f\", \"fleet\": {\"devices\": 4, \"workloads\": [\"video\"]}, \"horizon_s\": 600}\n",
        );
        let results = run_experiment(&spec, &ts);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].objective_name, "devices_per_s");
        assert!(results[0].objective > 0.0);
        assert_eq!(results[0].metric("devices"), Some(4.0));
        assert!(matches!(results[1].outcome, TrialOutcome::Error(_)));
    }

    #[test]
    fn arena_arms_reproduce_roster_arms_on_fleet_tasks() {
        // Inline calibration keeps both arms deterministic, so every
        // simulation-derived metric must agree exactly; only wall_ms
        // and the throughput objective may differ between runners.
        let spec = spec(
            "name: fleet-arena\n\
             variants:\n\
             \x20 - name: roster\n    policy: CAPMAN\n    calibration: inline\n\
             \x20 - name: arena\n    policy: CAPMAN\n    calibration: inline\n    arena: true\n",
        );
        let ts = tasks(
            "{\"task_id\": \"f\", \"fleet\": {\"devices\": 6, \"workloads\": [\"video\", \"pcmark\"]}, \"horizon_s\": 600}\n",
        );
        let results = run_experiment(&spec, &ts);
        assert_eq!(results.len(), 2);
        assert!(results[1].objective > 0.0, "arena arm must run");
        for key in [
            "devices",
            "ticks",
            "recalibrations",
            "lifetime_p50_s",
            "lifetime_p95_s",
            "hotspot_p95_c",
            "staleness_p99_s",
        ] {
            assert_eq!(results[0].metric(key), results[1].metric(key), "{key}");
        }
    }

    #[test]
    fn serve_arms_run_fleet_tasks_through_the_service() {
        let spec = spec(
            "name: fleet-serve\n\
             variants:\n\
             \x20 - name: pool\n    policy: CAPMAN\n\
             \x20 - name: serve\n    policy: CAPMAN\n    serve: true\n",
        );
        let ts = tasks(
            "{\"task_id\": \"f\", \"fleet\": {\"devices\": 6, \"workloads\": [\"video\", \"pcmark\"], \"every_s\": 300}, \"horizon_s\": 1500}\n",
        );
        let results = run_experiment(&spec, &ts);
        assert_eq!(results.len(), 2);
        let serve = &results[1];
        assert_eq!(serve.variant, "serve");
        assert!(serve.objective > 0.0, "serve arm must run");
        // Both arms tick the same devices for the same horizon — the
        // calibration backend must not change how long devices run.
        assert_eq!(results[0].metric("devices"), serve.metric("devices"));
        assert_eq!(results[0].metric("ticks"), serve.metric("ticks"));
        // The service ledger is projected onto the shared pool-counter
        // surface: with 3 devices per cohort asking on one cadence,
        // admission control sheds (replaces) the surplus instead of
        // solving it, which an unquota'd pool would never do.
        let dropped = serve.metric("pool_dropped").unwrap_or(0.0);
        let coalesced = serve.metric("pool_coalesced").unwrap_or(0.0);
        assert!(
            dropped + coalesced > 0.0,
            "overlapping cohort traffic must coalesce or shed through admission"
        );
    }

    #[test]
    fn serve_arms_reject_non_capman_policies_at_parse_time() {
        let err = ExperimentSpec::from_yaml(
            "name: bad\nvariants:\n  - name: d\n    policy: Dual\n    serve: true\n",
        )
        .expect_err("serve requires CAPMAN");
        assert!(
            err.contains("serve arms require the CAPMAN policy"),
            "{err}"
        );
    }
}
