//! Nested-Vec reference implementations kept as test/bench oracles.
//!
//! [`Mdp`](crate::mdp::Mdp) stores its transition structure in CSR form;
//! this module preserves the straightforward `Vec<Vec<Vec<Outcome>>>`
//! layout it replaced, together with the original in-place Gauss–Seidel
//! sweep, so that:
//!
//! * proptests can assert the CSR structure is observationally identical
//!   to the naive one (same outcomes, same action sets, bitwise-equal
//!   solver values — see `tests/csr_equivalence.rs`);
//! * the `mdp_solve` bench can measure the flat layout against the
//!   pre-CSR baseline it actually replaced, not against a strawman.
//!
//! Nothing in the production pipeline calls into this module.

use crate::mdp::Outcome;
use crate::value_iteration::Solution;

/// A finite MDP in the naive nested layout: `outcomes[s][a]` is the
/// (possibly empty) outcome list of `(s, a)`.
#[derive(Debug, Clone, PartialEq)]
pub struct NestedMdp {
    n_states: usize,
    n_actions: usize,
    outcomes: Vec<Vec<Vec<Outcome>>>,
}

impl NestedMdp {
    /// Start an empty nested MDP.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn new(n_states: usize, n_actions: usize) -> Self {
        assert!(n_states > 0, "need at least one state");
        assert!(n_actions > 0, "need at least one action");
        NestedMdp {
            n_states,
            n_actions,
            outcomes: vec![vec![Vec::new(); n_actions]; n_states],
        }
    }

    /// Record an outcome with a raw weight, mirroring
    /// [`MdpBuilder::transition`](crate::mdp::MdpBuilder::transition).
    ///
    /// # Panics
    ///
    /// Panics on the same invalid inputs the builder rejects.
    pub fn transition(
        &mut self,
        state: usize,
        action: usize,
        next: usize,
        prob: f64,
        reward: f64,
    ) -> &mut Self {
        assert!(state < self.n_states, "state out of range");
        assert!(action < self.n_actions, "action out of range");
        assert!(next < self.n_states, "successor out of range");
        assert!(
            prob > 0.0 && prob.is_finite(),
            "probability/count weight must be positive and finite"
        );
        assert!(
            (0.0..=1.0).contains(&reward),
            "reward must be normalised to [0, 1]"
        );
        self.outcomes[state][action].push(Outcome { next, prob, reward });
        self
    }

    /// Normalise each `(state, action)` row to sum to one, in insertion
    /// order — the exact arithmetic `MdpBuilder::build` performs, so the
    /// stored probabilities are bitwise comparable.
    pub fn normalise(&mut self) {
        for per_state in &mut self.outcomes {
            for outs in per_state {
                let total: f64 = outs.iter().map(|o| o.prob).sum();
                if total > 0.0 {
                    for o in outs.iter_mut() {
                        o.prob /= total;
                    }
                }
            }
        }
    }

    /// Number of states.
    pub fn n_states(&self) -> usize {
        self.n_states
    }

    /// Number of actions.
    pub fn n_actions(&self) -> usize {
        self.n_actions
    }

    /// The outcomes of `(state, action)`.
    pub fn outcomes(&self, state: usize, action: usize) -> &[Outcome] {
        &self.outcomes[state][action]
    }

    /// Actions available in `state` — the original O(|A|) filter scan.
    pub fn available_actions(&self, state: usize) -> impl Iterator<Item = usize> + '_ {
        (0..self.n_actions).filter(move |&a| !self.outcomes[state][a].is_empty())
    }
}

/// The pre-CSR value-iteration solver, verbatim: an in-place
/// Gauss–Seidel sweep over the nested layout, re-filtering the action
/// set of every state on every sweep.
///
/// # Panics
///
/// Panics if `rho` is not in `[0, 1)` or `eps` is not positive.
pub fn solve_nested(mdp: &NestedMdp, rho: f64, eps: f64) -> Solution {
    assert!((0.0..1.0).contains(&rho), "discount must be in [0, 1)");
    assert!(eps > 0.0, "precision must be positive");
    let n = mdp.n_states();
    let mut values = vec![0.0; n];
    let mut iterations = 0;
    loop {
        iterations += 1;
        let mut residual: f64 = 0.0;
        for s in 0..n {
            let mut best = f64::NEG_INFINITY;
            for a in mdp.available_actions(s) {
                let q: f64 = mdp
                    .outcomes(s, a)
                    .iter()
                    .map(|o| o.prob * (o.reward + rho * values[o.next]))
                    .sum();
                best = best.max(q);
            }
            let new = if best.is_finite() { best } else { 0.0 };
            residual = residual.max((new - values[s]).abs());
            values[s] = new;
        }
        if residual < eps || iterations > 1_000_000 {
            break;
        }
    }

    let mut q = vec![Vec::new(); n];
    let mut policy = vec![None; n];
    for s in 0..n {
        q[s] = (0..mdp.n_actions())
            .map(|a| {
                let outs = mdp.outcomes(s, a);
                if outs.is_empty() {
                    f64::NEG_INFINITY
                } else {
                    outs.iter()
                        .map(|o| o.prob * (o.reward + rho * values[o.next]))
                        .sum()
                }
            })
            .collect();
        policy[s] = mdp
            .available_actions(s)
            .max_by(|&a, &b| q[s][a].total_cmp(&q[s][b]));
    }

    Solution {
        values,
        q,
        policy,
        iterations,
    }
}

/// A Jacobi value-iteration sweep over the nested layout, replicating
/// the arithmetic of [`crate::value_iteration::solve`] operation for
/// operation — the bitwise oracle for the CSR solver. Like the CSR
/// sweep, each action value is the expected-reward-hoisted
/// `R + rho * sum p * V` (the reward sum here is recomputed per sweep
/// where the CSR layout caches it at build; same inputs in the same
/// order, hence the same bits).
///
/// # Panics
///
/// Panics if `rho` is not in `[0, 1)` or `eps` is not positive.
pub fn solve_nested_jacobi(mdp: &NestedMdp, rho: f64, eps: f64) -> Solution {
    assert!((0.0..1.0).contains(&rho), "discount must be in [0, 1)");
    assert!(eps > 0.0, "precision must be positive");
    let n = mdp.n_states();
    let mut values = vec![0.0; n];
    let mut next = vec![0.0; n];
    let mut iterations = 0;
    loop {
        iterations += 1;
        for (s, slot) in next.iter_mut().enumerate() {
            let mut best = f64::NEG_INFINITY;
            for a in mdp.available_actions(s) {
                let outs = mdp.outcomes(s, a);
                let r: f64 = outs.iter().map(|o| o.prob * o.reward).sum();
                let pv: f64 = outs.iter().map(|o| o.prob * values[o.next]).sum();
                best = best.max(r + rho * pv);
            }
            *slot = if best.is_finite() { best } else { 0.0 };
        }
        let mut residual: f64 = 0.0;
        for s in 0..n {
            residual = residual.max((next[s] - values[s]).abs());
        }
        std::mem::swap(&mut values, &mut next);
        if residual < eps || iterations > 1_000_000 {
            break;
        }
    }

    let mut q = vec![Vec::new(); n];
    let mut policy = vec![None; n];
    for s in 0..n {
        q[s] = (0..mdp.n_actions())
            .map(|a| {
                let outs = mdp.outcomes(s, a);
                if outs.is_empty() {
                    f64::NEG_INFINITY
                } else {
                    let r: f64 = outs.iter().map(|o| o.prob * o.reward).sum();
                    let pv: f64 = outs.iter().map(|o| o.prob * values[o.next]).sum();
                    r + rho * pv
                }
            })
            .collect();
        policy[s] = mdp
            .available_actions(s)
            .max_by(|&a, &b| q[s][a].total_cmp(&q[s][b]));
    }

    Solution {
        values,
        q,
        policy,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_armed() -> NestedMdp {
        let mut m = NestedMdp::new(2, 2);
        m.transition(0, 0, 1, 1.0, 0.2);
        m.transition(0, 1, 1, 1.0, 0.9);
        m.normalise();
        m
    }

    #[test]
    fn nested_solver_picks_the_better_arm() {
        let sol = solve_nested(&two_armed(), 0.9, 1e-10);
        assert_eq!(sol.policy[0], Some(1));
        assert!((sol.values[0] - 0.9).abs() < 1e-9);
    }

    #[test]
    fn jacobi_and_gauss_seidel_agree_at_the_fixpoint() {
        let m = two_armed();
        let gs = solve_nested(&m, 0.9, 1e-12);
        let ja = solve_nested_jacobi(&m, 0.9, 1e-12);
        for (a, b) in gs.values.iter().zip(&ja.values) {
            assert!((a - b).abs() < 1e-9);
        }
        assert_eq!(gs.policy, ja.policy);
    }

    #[test]
    fn normalisation_matches_builder_semantics() {
        let mut m = NestedMdp::new(2, 1);
        m.transition(0, 0, 0, 3.0, 0.0);
        m.transition(0, 0, 1, 1.0, 1.0);
        m.normalise();
        let total: f64 = m.outcomes(0, 0).iter().map(|o| o.prob).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(m.outcomes(0, 0)[0].prob, 0.75);
    }
}
