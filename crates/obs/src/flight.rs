//! The flight recorder: an always-on, bounded postmortem buffer.
//!
//! Aggregate metrics say *that* a soak degraded; the flight recorder
//! keeps enough recent evidence to say *why*. It holds three rolling
//! windows — recent span records (absorbed from [`Tracer::drain`]
//! drains), recent registry snapshots, and recent completed request
//! traces with their critical-path phase decomposition — plus the SLO
//! verdict ledger, all bounded so a week-long soak costs the same
//! memory as a short one.
//!
//! [`FlightRecorder::dump`] writes a postmortem **bundle** (chrome
//! trace + Prometheus scrape + metrics JSON + verdicts + per-trace
//! critical paths + a manifest) to a directory. Dumps fire on panic
//! (via [`FlightRecorder::arm_panic_hook`]), when the serve SLO monitor
//! flips into Degraded/Shedding, or on explicit trigger — so an
//! overload failure in CI ships its own evidence as an artifact.
//!
//! [`Tracer::drain`]: crate::trace::Tracer::drain

use std::collections::VecDeque;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};

use crate::export::{chrome_trace, metrics_json, prometheus_text};
use crate::metrics::MetricsSnapshot;
use crate::trace::{SpanRecord, TraceDrain};

/// Bounds and destination for a [`FlightRecorder`].
#[derive(Debug, Clone, Default)]
pub struct FlightConfig {
    /// Where [`FlightRecorder::dump`] writes bundles. `None` (the
    /// default) keeps the recorder memory-only: it still accumulates,
    /// `dump` becomes a no-op returning `Ok(None)`.
    pub dir: Option<PathBuf>,
    /// Span records retained (0 picks the default, 65 536).
    pub max_records: usize,
    /// Registry snapshots retained (0 picks the default, 8).
    pub max_snapshots: usize,
    /// Completed request traces retained (0 picks the default, 256).
    pub max_traces: usize,
    /// SLO verdict lines retained (0 picks the default, 64).
    pub max_verdicts: usize,
}

impl FlightConfig {
    /// A recorder that dumps bundles under `dir`, default bounds.
    pub fn dumping_to(dir: impl Into<PathBuf>) -> Self {
        FlightConfig {
            dir: Some(dir.into()),
            ..FlightConfig::default()
        }
    }

    fn records_cap(&self) -> usize {
        if self.max_records == 0 {
            65_536
        } else {
            self.max_records
        }
    }

    fn snapshots_cap(&self) -> usize {
        if self.max_snapshots == 0 {
            8
        } else {
            self.max_snapshots
        }
    }

    fn traces_cap(&self) -> usize {
        if self.max_traces == 0 {
            256
        } else {
            self.max_traces
        }
    }

    fn verdicts_cap(&self) -> usize {
        if self.max_verdicts == 0 {
            64
        } else {
            self.max_verdicts
        }
    }
}

/// One served request's closed trace: the monotone timestamps of its
/// lifecycle hops, from which the critical-path phases are derived.
///
/// The constructor clamps the timestamps into monotone order, so the
/// four phases are exact differences and
/// [`phase_sum`](CompletedTrace::phase_sum) telescopes to
/// [`staleness_s`](CompletedTrace::staleness_s) *identically* — the
/// decomposition cannot leak or invent time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompletedTrace {
    /// The trace id (resolves into the span drain / chrome trace).
    pub trace: u64,
    /// Cohort the request calibrated.
    pub cohort: usize,
    /// Simulated time the request was first submitted.
    pub submitted_s: f64,
    /// When the scheduler first considered (and passed over or took)
    /// the request — the end of pure queue wait.
    pub queue_end_s: f64,
    /// When the scheduler picked the request for solving.
    pub picked_s: f64,
    /// When the solved calibration was published.
    pub published_s: f64,
    /// When a device adopted the publication, closing the trace.
    pub adopted_s: f64,
}

impl CompletedTrace {
    /// Build a trace from raw timestamps, clamping them monotone
    /// (`submitted ≤ queue_end ≤ picked ≤ published ≤ adopted`).
    pub fn new(
        trace: u64,
        cohort: usize,
        submitted_s: f64,
        queue_end_s: f64,
        picked_s: f64,
        published_s: f64,
        adopted_s: f64,
    ) -> Self {
        let queue_end_s = queue_end_s.max(submitted_s);
        let picked_s = picked_s.max(queue_end_s);
        let published_s = published_s.max(picked_s);
        let adopted_s = adopted_s.max(published_s);
        CompletedTrace {
            trace,
            cohort,
            submitted_s,
            queue_end_s,
            picked_s,
            published_s,
            adopted_s,
        }
    }

    /// Pure queue wait: submission to first scheduler consideration.
    pub fn queue_s(&self) -> f64 {
        self.queue_end_s - self.submitted_s
    }

    /// Lane wait: first consideration to the winning pick (time spent
    /// being passed over by higher-ranked lanes).
    pub fn lane_s(&self) -> f64 {
        self.picked_s - self.queue_end_s
    }

    /// Solve time: pick to publication.
    pub fn solve_s(&self) -> f64 {
        self.published_s - self.picked_s
    }

    /// Adoption lag: publication to a device adopting it.
    pub fn publish_adopt_s(&self) -> f64 {
        self.adopted_s - self.published_s
    }

    /// The four phases in order (queue, lane, solve, publish→adopt).
    pub fn phases(&self) -> [f64; 4] {
        [
            self.queue_s(),
            self.lane_s(),
            self.solve_s(),
            self.publish_adopt_s(),
        ]
    }

    /// Sum of the four phases — identically
    /// [`staleness_s`](CompletedTrace::staleness_s) by construction.
    pub fn phase_sum(&self) -> f64 {
        self.phases().iter().sum()
    }

    /// End-to-end served staleness: submission to adoption.
    pub fn staleness_s(&self) -> f64 {
        self.adopted_s - self.submitted_s
    }

    /// One line for `traces.txt`: the trace id and its critical path.
    pub fn line(&self) -> String {
        format!(
            "trace {} cohort {}: staleness {:.3} s = queue {:.3} + lane {:.3} + solve {:.3} + publish_adopt {:.3}",
            self.trace,
            self.cohort,
            self.staleness_s(),
            self.queue_s(),
            self.lane_s(),
            self.solve_s(),
            self.publish_adopt_s()
        )
    }
}

#[derive(Debug, Default)]
struct FlightState {
    records: VecDeque<SpanRecord>,
    dropped: u64,
    snapshots: VecDeque<MetricsSnapshot>,
    traces: VecDeque<CompletedTrace>,
    verdicts: VecDeque<String>,
}

/// The bounded postmortem buffer (see the module docs).
#[derive(Debug)]
pub struct FlightRecorder {
    config: FlightConfig,
    state: Mutex<FlightState>,
    bundles: Mutex<Vec<PathBuf>>,
    dump_seq: AtomicU64,
}

/// Recorders armed for panic dumps. `Weak` so a recorder dropped with
/// its soak does not leak through the process-lifetime hook.
static ARMED: Mutex<Vec<Weak<FlightRecorder>>> = Mutex::new(Vec::new());

impl FlightRecorder {
    /// A recorder with the given bounds and dump destination.
    pub fn new(config: FlightConfig) -> Arc<Self> {
        Arc::new(FlightRecorder {
            config,
            state: Mutex::new(FlightState::default()),
            bundles: Mutex::new(Vec::new()),
            dump_seq: AtomicU64::new(0),
        })
    }

    /// Fold a drain into the rolling span window. Oldest records fall
    /// off the front and count as dropped, like the tracer's own rings.
    pub fn absorb(&self, drain: TraceDrain) {
        let cap = self.config.records_cap();
        let mut st = self.state.lock().expect("flight state poisoned");
        st.dropped += drain.dropped;
        for r in drain.records {
            if st.records.len() == cap {
                st.records.pop_front();
                st.dropped += 1;
            }
            st.records.push_back(r);
        }
    }

    /// Retain a registry snapshot (rolling, newest last).
    pub fn note_metrics(&self, snap: MetricsSnapshot) {
        let cap = self.config.snapshots_cap();
        let mut st = self.state.lock().expect("flight state poisoned");
        if st.snapshots.len() == cap {
            st.snapshots.pop_front();
        }
        st.snapshots.push_back(snap);
    }

    /// Retain a completed request trace (rolling, newest last).
    pub fn note_trace(&self, trace: CompletedTrace) {
        let cap = self.config.traces_cap();
        let mut st = self.state.lock().expect("flight state poisoned");
        if st.traces.len() == cap {
            st.traces.pop_front();
        }
        st.traces.push_back(trace);
    }

    /// Retain an SLO verdict line (rolling, newest last).
    pub fn note_verdict(&self, verdict: String) {
        let cap = self.config.verdicts_cap();
        let mut st = self.state.lock().expect("flight state poisoned");
        if st.verdicts.len() == cap {
            st.verdicts.pop_front();
        }
        st.verdicts.push_back(verdict);
    }

    /// The retained completed traces, oldest first.
    pub fn completed(&self) -> Vec<CompletedTrace> {
        self.state
            .lock()
            .expect("flight state poisoned")
            .traces
            .iter()
            .copied()
            .collect()
    }

    /// A copy of the retained span window as a drain (sorted by
    /// `(start_ns, id)` like a tracer drain), for export or validation.
    pub fn trace_view(&self) -> TraceDrain {
        let st = self.state.lock().expect("flight state poisoned");
        let mut records: Vec<SpanRecord> = st.records.iter().cloned().collect();
        records.sort_by_key(|r| (r.start_ns, r.id));
        TraceDrain {
            records,
            dropped: st.dropped,
        }
    }

    /// Bundles written so far, in dump order.
    pub fn bundles(&self) -> Vec<PathBuf> {
        self.bundles.lock().expect("bundle list poisoned").clone()
    }

    /// Write a postmortem bundle — `trace.json`, `metrics.prom`,
    /// `metrics.json`, `verdicts.txt`, `traces.txt`, `MANIFEST.json` —
    /// to a fresh `flight-<seq>-<reason>/` directory under the
    /// configured dump dir. Returns the bundle path, or `Ok(None)` for
    /// a memory-only recorder. The retained evidence is *not* cleared:
    /// a later dump supersedes an earlier one.
    pub fn dump(&self, reason: &str) -> io::Result<Option<PathBuf>> {
        let Some(dir) = &self.config.dir else {
            return Ok(None);
        };
        let seq = self.dump_seq.fetch_add(1, Ordering::Relaxed);
        let slug: String = reason
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '-'
                }
            })
            .collect();
        let bundle = dir.join(format!("flight-{seq}-{slug}"));
        std::fs::create_dir_all(&bundle)?;
        let (trace, latest_metrics, traces_txt, verdicts_txt, manifest) = {
            let st = self.state.lock().expect("flight state poisoned");
            let mut records: Vec<SpanRecord> = st.records.iter().cloned().collect();
            records.sort_by_key(|r| (r.start_ns, r.id));
            let trace = TraceDrain {
                records,
                dropped: st.dropped,
            };
            let latest = st.snapshots.back().cloned().unwrap_or_default();
            let traces_txt: String = st
                .traces
                .iter()
                .map(|t| t.line() + "\n")
                .collect::<String>();
            let verdicts_txt: String = st.verdicts.iter().map(|v| v.clone() + "\n").collect();
            let manifest = format!(
                "{{\n  \"reason\": \"{}\",\n  \"seq\": {seq},\n  \"span_records\": {},\n  \
                 \"spans_dropped\": {},\n  \"metric_snapshots\": {},\n  \
                 \"completed_traces\": {},\n  \"verdicts\": {}\n}}\n",
                crate::export::json_escape(reason),
                trace.records.len(),
                trace.dropped,
                st.snapshots.len(),
                st.traces.len(),
                st.verdicts.len(),
            );
            (trace, latest, traces_txt, verdicts_txt, manifest)
        };
        std::fs::write(bundle.join("trace.json"), chrome_trace(&trace))?;
        std::fs::write(
            bundle.join("metrics.prom"),
            prometheus_text(&latest_metrics),
        )?;
        std::fs::write(bundle.join("metrics.json"), metrics_json(&latest_metrics))?;
        std::fs::write(bundle.join("traces.txt"), traces_txt)?;
        std::fs::write(bundle.join("verdicts.txt"), verdicts_txt)?;
        std::fs::write(bundle.join("MANIFEST.json"), manifest)?;
        self.bundles
            .lock()
            .expect("bundle list poisoned")
            .push(bundle.clone());
        Ok(Some(bundle))
    }

    /// Arm this recorder for panic dumps: a process-wide panic hook
    /// (installed once, chaining the pre-existing hook) dumps every
    /// armed, still-live recorder with reason `"panic"` before the
    /// original hook reports the panic. Arming is idempotent per
    /// recorder; recorders are held weakly, so dropping one disarms it.
    pub fn arm_panic_hook(self: &Arc<Self>) {
        {
            let mut armed = ARMED.lock().expect("armed list poisoned");
            armed.retain(|w| w.strong_count() > 0);
            if !armed.iter().any(|w| w.as_ptr() == Arc::as_ptr(self)) {
                armed.push(Arc::downgrade(self));
            }
        }
        static HOOKED: OnceLock<()> = OnceLock::new();
        HOOKED.get_or_init(|| {
            let previous = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let armed: Vec<Arc<FlightRecorder>> = ARMED
                    .lock()
                    .map(|list| list.iter().filter_map(Weak::upgrade).collect())
                    .unwrap_or_default();
                for recorder in armed {
                    // Best effort: a failed dump must not mask the
                    // panic being reported.
                    let _ = recorder.dump("panic");
                }
                previous(info);
            }));
        });
    }

    /// The configured dump directory, if any.
    pub fn dir(&self) -> Option<&Path> {
        self.config.dir.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::validate_prometheus;
    use crate::metrics::Registry;
    use crate::trace::Tracer;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("capman-flight-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn completed_trace_phases_telescope_to_staleness() {
        let t = CompletedTrace::new(7, 2, 10.0, 12.0, 15.0, 20.0, 26.0);
        assert_eq!(t.queue_s(), 2.0);
        assert_eq!(t.lane_s(), 3.0);
        assert_eq!(t.solve_s(), 5.0);
        assert_eq!(t.publish_adopt_s(), 6.0);
        assert_eq!(t.phase_sum(), t.staleness_s());
        // Out-of-order timestamps are clamped monotone, and the
        // telescoping identity still holds exactly.
        let clamped = CompletedTrace::new(8, 0, 10.0, 9.0, 8.0, 30.0, 25.0);
        assert_eq!(clamped.queue_s(), 0.0);
        assert_eq!(clamped.lane_s(), 0.0);
        assert_eq!(clamped.phase_sum(), clamped.staleness_s());
        assert!(clamped.line().contains("trace 8"));
    }

    #[test]
    fn rolling_windows_are_bounded() {
        let rec = FlightRecorder::new(FlightConfig {
            max_records: 4,
            max_traces: 2,
            max_verdicts: 2,
            max_snapshots: 2,
            ..FlightConfig::default()
        });
        let t = Tracer::new(64);
        for i in 0..6u64 {
            t.event("e", i);
        }
        rec.absorb(t.drain());
        let view = rec.trace_view();
        assert_eq!(view.records.len(), 4);
        assert_eq!(view.dropped, 2, "evictions counted");
        assert_eq!(
            view.records.iter().map(|r| r.arg).collect::<Vec<_>>(),
            vec![2, 3, 4, 5],
            "oldest records fell off"
        );
        for i in 0..3 {
            rec.note_trace(CompletedTrace::new(i, 0, 0.0, 0.0, 0.0, 0.0, 1.0));
            rec.note_verdict(format!("verdict {i}"));
            rec.note_metrics(MetricsSnapshot::default());
        }
        assert_eq!(rec.completed().len(), 2);
        assert_eq!(rec.completed()[0].trace, 1, "oldest trace evicted");
    }

    #[test]
    fn memory_only_recorder_dumps_nothing() {
        let rec = FlightRecorder::new(FlightConfig::default());
        assert!(rec.dump("whatever").expect("no-op dump").is_none());
        assert!(rec.bundles().is_empty());
    }

    #[test]
    fn dump_writes_a_bundle_that_validates() {
        let dir = temp_dir("bundle");
        let rec = FlightRecorder::new(FlightConfig::dumping_to(&dir));
        let t = Tracer::new(64);
        let ctx = t.begin_trace("submit", 0);
        let pick = t.event_in("pick", 0, ctx.trace);
        t.link("queue_flow", ctx.origin, pick, ctx.trace);
        rec.absorb(t.drain());
        let r = Registry::new();
        r.counter("solves_total", "Solves").add(1);
        let h = r.histogram("stale_s", "Staleness", &[1.0, 10.0]);
        h.observe_with_exemplar(5.0, ctx.trace);
        rec.note_metrics(r.snapshot());
        rec.note_trace(CompletedTrace::new(ctx.trace, 0, 0.0, 1.0, 2.0, 3.0, 5.0));
        rec.note_verdict("mode=degraded breached=true".to_string());
        let bundle = rec
            .dump("slo: Degraded!")
            .expect("dump io")
            .expect("dir configured");
        assert!(bundle.ends_with("flight-0-slo--degraded-"));
        let trace_json =
            std::fs::read_to_string(bundle.join("trace.json")).expect("trace.json written");
        assert!(
            trace_json.contains("\"cat\": \"flow\""),
            "arc survived the dump"
        );
        let prom = std::fs::read_to_string(bundle.join("metrics.prom")).expect("scrape written");
        validate_prometheus(&prom).expect("bundled scrape validates");
        assert!(prom.contains(&format!("trace_id=\"{}\"", ctx.trace)));
        let traces = std::fs::read_to_string(bundle.join("traces.txt")).expect("traces written");
        assert!(traces.contains(&format!("trace {}", ctx.trace)));
        let manifest =
            std::fs::read_to_string(bundle.join("MANIFEST.json")).expect("manifest written");
        assert!(manifest.contains("\"reason\": \"slo: Degraded!\""));
        assert_eq!(rec.bundles(), vec![bundle]);
        // A second dump gets its own directory.
        let second = rec.dump("again").expect("dump io").expect("dir configured");
        assert!(second.ends_with("flight-1-again"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
