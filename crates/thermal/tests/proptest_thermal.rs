//! Property-based invariants for the thermal substrate.

use proptest::prelude::*;

use capman_thermal::network::{NodeId, ThermalNetwork};
use capman_thermal::tec::{Tec, TecController};

fn arb_node() -> impl Strategy<Value = NodeId> {
    prop_oneof![
        Just(NodeId::Cpu),
        Just(NodeId::HotSpot),
        Just(NodeId::Battery),
        Just(NodeId::Screen),
        Just(NodeId::Shell),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Temperatures stay finite and above ambient-minus-epsilon under
    /// arbitrary non-negative heat injections.
    #[test]
    fn temperatures_stay_physical(
        injections in prop::collection::vec((arb_node(), 0.0f64..5.0), 1..200),
    ) {
        let mut n = ThermalNetwork::phone();
        for (node, power) in injections {
            n.inject(node, power);
            n.step(1.0);
            for node in NodeId::ALL {
                let t = n.temp_c(node);
                prop_assert!(t.is_finite());
                prop_assert!(t >= 25.0 - 1e-6, "{node:?} fell below ambient: {t}");
                prop_assert!(t <= 500.0, "{node:?} exploded: {t}");
            }
        }
    }

    /// With heating removed, every node relaxes monotonically toward
    /// ambient (from above).
    #[test]
    fn relaxation_is_monotone(extra in 1.0f64..60.0) {
        let mut n = ThermalNetwork::phone();
        n.set_temp_c(NodeId::Cpu, 25.0 + extra);
        let mut prev = n.temp_c(NodeId::Cpu);
        for _ in 0..600 {
            n.step(1.0);
            let cur = n.temp_c(NodeId::Cpu);
            prop_assert!(cur <= prev + 1e-9, "CPU temperature rose while relaxing");
            prev = cur;
        }
    }

    /// Steady-state temperature grows with injected power.
    #[test]
    fn more_power_means_hotter(p1 in 0.1f64..2.0, extra in 0.1f64..2.0) {
        let steady = |power: f64| {
            let mut n = ThermalNetwork::phone();
            for _ in 0..4000 {
                n.inject(NodeId::Cpu, power);
                n.step(1.0);
            }
            n.temp_c(NodeId::Cpu)
        };
        prop_assert!(steady(p1 + extra) > steady(p1));
    }

    /// The Fig. 6 curve is concave-shaped: it increases up to the rated
    /// current and decreases after it.
    #[test]
    fn tec_curve_unimodal(i in 0.0f64..2.2) {
        let tec = Tec::ate31();
        let rated = tec.rated_current_a();
        let dt = tec.delta_t_steady(i);
        let dt_eps = tec.delta_t_steady(i + 0.01);
        if i + 0.01 <= rated {
            prop_assert!(dt_eps >= dt - 1e-9, "curve must rise before the rating");
        } else if i >= rated {
            prop_assert!(dt_eps <= dt + 1e-9, "curve must fall after the rating");
        }
    }

    /// The bang-bang controller never chatters inside its hysteresis
    /// band: state changes require crossing a band edge.
    #[test]
    fn controller_hysteresis_holds(temps in prop::collection::vec(30.0f64..60.0, 1..100)) {
        let mut ctl = TecController::paper();
        let mut prev_on = false;
        for t in temps {
            let on = ctl.update(t);
            if on != prev_on {
                if on {
                    prop_assert!(t > ctl.threshold_c);
                } else {
                    prop_assert!(t < ctl.threshold_c - ctl.hysteresis_k);
                }
            }
            prev_on = on;
        }
    }
}
