//! The clairvoyant *Oracle* baseline.
//!
//! "A baseline based on offline analysis, serving ground truth"
//! (Section V): the Oracle reads the workload trace itself, so it knows
//! the exact upcoming power demand — it classifies every surge perfectly
//! and a few seconds early, and balances the two cells' depletion with
//! exact knowledge. CAPMAN's quality is judged by how closely it tracks
//! this policy without seeing the future.

use capman_battery::chemistry::Class;
use capman_device::power::PowerModel;
use capman_workload::Trace;

use crate::policy::{usable_or_fallback, DecisionContext, Policy};

/// The clairvoyant scheduling baseline.
#[derive(Debug, Clone)]
pub struct OraclePolicy {
    trace: Trace,
    model: PowerModel,
    /// How far ahead the Oracle peeks, seconds.
    lookahead_s: f64,
    /// Base surge threshold, watts.
    thr_base_w: f64,
    /// Gain of the depletion-balance controller.
    beta: f64,
}

impl OraclePolicy {
    /// Build an Oracle for the given trace and phone power model.
    pub fn new(trace: Trace, model: PowerModel) -> Self {
        OraclePolicy {
            trace,
            model,
            lookahead_s: 4.0,
            thr_base_w: 1.5,
            beta: 2.5,
        }
    }

    /// The exact device power at time `t`, assuming the device state the
    /// engine reports, watts.
    fn exact_power_w(&self, ctx: &DecisionContext<'_>, t: f64) -> f64 {
        let mut state = ctx.state;
        // Apply the boundary actions of every segment between now and t
        // so the peeked state is consistent with the trace.
        for seg in self.trace.segments_starting_in(ctx.time_s, t + 1e-9) {
            for &a in &seg.actions {
                state = state.apply(a);
            }
        }
        let demand = self.trace.at(t).demand;
        self.model.device_power_mw(&state, &demand) / 1000.0
    }
}

impl Policy for OraclePolicy {
    fn name(&self) -> &'static str {
        "Oracle"
    }

    fn decide(&mut self, ctx: &DecisionContext<'_>) -> Class {
        // Exact current power plus a peek at the near future.
        let now = self.exact_power_w(ctx, ctx.time_s);
        let ahead = self.exact_power_w(ctx, ctx.time_s + self.lookahead_s);
        let pred = now.max(ahead);

        // Balance both cells toward simultaneous exhaustion: when the
        // LITTLE cell is richer, lower the threshold so it takes more of
        // the load, and vice versa.
        let imbalance = ctx.little_soc - ctx.big_soc;
        let thr = (self.thr_base_w * (1.0 - self.beta * imbalance)).clamp(0.4, 6.0);

        let hot = ctx.tec_on || ctx.hotspot_c > 44.0;
        let mut preferred = if pred > thr || (hot && pred > 0.7 * thr) {
            Class::Little
        } else {
            Class::Big
        };

        // Head guard (see `CapmanPolicy::decide`): rest a diffusion-
        // starved big cell instead of browning out on it.
        if preferred == Class::Big && ctx.big_head < 0.12 && ctx.little_usable {
            preferred = Class::Little;
        } else if preferred == Class::Little && ctx.little_head < 0.05 && ctx.big_usable {
            preferred = Class::Big;
        }
        usable_or_fallback(preferred, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capman_device::phone::PhoneProfile;
    use capman_device::states::DeviceState;
    use capman_workload::{generate, WorkloadKind};

    fn ctx_at(time_s: f64, little_soc: f64, big_soc: f64) -> DecisionContext<'static> {
        DecisionContext {
            time_s,
            state: DeviceState::awake(),
            actions: &[],
            last_power_w: 1.0,
            big_soc,
            little_soc,
            big_usable: true,
            little_usable: true,
            big_head: 1.0,
            little_head: 1.0,
            hotspot_c: 30.0,
            tec_on: false,
            dual: true,
        }
    }

    fn oracle(kind: WorkloadKind) -> OraclePolicy {
        let trace = generate(kind, 2000.0, 3);
        OraclePolicy::new(trace, PhoneProfile::nexus().power_model())
    }

    #[test]
    fn routes_saturating_load_to_little() {
        let mut o = oracle(WorkloadKind::Geekbench);
        // Geekbench saturates from the start: power > threshold.
        assert_eq!(o.decide(&ctx_at(100.0, 0.9, 0.9)), Class::Little);
    }

    #[test]
    fn routes_idle_load_to_big() {
        let mut o = oracle(WorkloadKind::IdleOn);
        assert_eq!(o.decide(&ctx_at(100.0, 0.9, 0.9)), Class::Big);
    }

    #[test]
    fn balance_controller_protects_the_drained_cell() {
        let mut o = oracle(WorkloadKind::Geekbench);
        // Geekbench draws ~2.3 W: with a near-dead LITTLE cell, the
        // threshold rises above the demand and big takes over.
        assert_eq!(o.decide(&ctx_at(100.0, 0.05, 0.95)), Class::Big);
    }

    #[test]
    fn falls_back_when_preferred_cell_is_dead() {
        let mut o = oracle(WorkloadKind::Geekbench);
        let mut c = ctx_at(100.0, 0.5, 0.5);
        c.little_usable = false;
        assert_eq!(o.decide(&c), Class::Big);
    }
}
