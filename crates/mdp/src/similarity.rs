//! Algorithm 1 — the structural-similarity recursion.
//!
//! Computes the fixpoint similarity matrices `(sigma_S*, sigma_A*)` over
//! the state and action nodes of an [`MdpGraph`]:
//!
//! ```text
//! sigma_A(a, b) = 1 - (1 - C_A) * delta_rwd(a, b)
//!                   - C_A * delta_EMD(p_a, p_b; delta_S)
//! sigma_S(u, v) = C_S * (1 - d_Haus(N_u, N_v; delta_A))
//! ```
//!
//! with the base cases of Eq. (3): `delta_S(u, u) = 0`; exactly one of
//! `u`, `v` absorbing gives `delta_S = 1`; two absorbing states get the
//! configurable target distance `d_{u,v}`.
//!
//! With `C_S = 1` and `C_A = rho`, the fixpoint distances bound the
//! optimal-value differences (Section III-D):
//!
//! ```text
//! |V*_u - V*_v| <= delta_S*(u, v) / (1 - rho)
//! |Q*_a - Q*_b| <= delta_A*(a, b) / (1 - rho)
//! ```
//!
//! which is the paper's `O(1/(1-rho))`-competitiveness: reusing a similar
//! state's decision costs at most `delta / (1 - rho)` in value.

use serde::{Deserialize, Serialize};

use crate::emd::emd_detailed;
use crate::graph::MdpGraph;
use crate::hausdorff::hausdorff;
use crate::matrix::SquareMatrix;

/// Parameters of Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimilarityParams {
    /// State-similarity discount `C_S` in `(0, 1]`.
    pub c_s: f64,
    /// Action-similarity discount `C_A` in `(0, 1)` — set to the MDP
    /// discount `rho` for the competitiveness bound.
    pub c_a: f64,
    /// Distance `d_{u,v}` between two absorbing (target) states.
    pub absorbing_distance: f64,
    /// Convergence tolerance on the sup-norm change of `S` and `A`.
    pub tolerance: f64,
    /// Iteration cap.
    pub max_iterations: usize,
}

impl SimilarityParams {
    /// The paper's configuration for a discount factor `rho`:
    /// `C_S = 1`, `C_A = rho`, identical targets.
    ///
    /// # Panics
    ///
    /// Panics if `rho` is not in `(0, 1)`.
    pub fn paper(rho: f64) -> Self {
        assert!(rho > 0.0 && rho < 1.0, "rho must be in (0, 1)");
        SimilarityParams {
            c_s: 1.0,
            c_a: rho,
            absorbing_distance: 0.0,
            tolerance: 1e-6,
            max_iterations: 10_000,
        }
    }

    pub(crate) fn validate(&self) {
        assert!(self.c_s > 0.0 && self.c_s <= 1.0, "C_S must be in (0, 1]");
        assert!(self.c_a > 0.0 && self.c_a < 1.0, "C_A must be in (0, 1)");
        assert!(
            (0.0..=1.0).contains(&self.absorbing_distance),
            "d_uv must be in [0, 1]"
        );
        assert!(self.tolerance > 0.0, "tolerance must be positive");
        assert!(self.max_iterations > 0, "need at least one iteration");
    }
}

impl Default for SimilarityParams {
    fn default() -> Self {
        SimilarityParams::paper(0.05)
    }
}

/// The solution `(sigma_S*, sigma_A*)` of Algorithm 1 with run statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimilarityResult {
    /// State-node similarity matrix `sigma_S*`.
    pub sigma_s: SquareMatrix,
    /// Action-node similarity matrix `sigma_A*`.
    pub sigma_a: SquareMatrix,
    /// Iterations of the main loop (the `N` in the complexity analysis).
    pub iterations: usize,
    /// Whether the tolerance was met before the iteration cap.
    pub converged: bool,
    /// Total EMD evaluations (the Theta(|Lambda|^2) SSP calls/iteration).
    pub emd_calls: usize,
    /// Total SSP augmenting paths across all EMD calls.
    pub ssp_augmentations: usize,
}

impl SimilarityResult {
    /// State distance `delta_S*(u, v) = 1 - sigma_S*(u, v)`.
    pub fn delta_s(&self, u: usize, v: usize) -> f64 {
        1.0 - self.sigma_s.get(u, v)
    }

    /// Action distance `delta_A*(a, b) = 1 - sigma_A*(a, b)`.
    pub fn delta_a(&self, a: usize, b: usize) -> f64 {
        1.0 - self.sigma_a.get(a, b)
    }

    /// The value-difference bound `delta_S*(u, v) / (1 - rho)`.
    ///
    /// # Panics
    ///
    /// Panics if `rho` is not in `[0, 1)`.
    pub fn value_bound(&self, u: usize, v: usize, rho: f64) -> f64 {
        assert!((0.0..1.0).contains(&rho), "rho must be in [0, 1)");
        self.delta_s(u, v) / (1.0 - rho)
    }
}

/// Run Algorithm 1 on an MDP graph.
///
/// # Panics
///
/// Panics if the parameters are out of their domains.
pub fn structural_similarity(graph: &MdpGraph, params: &SimilarityParams) -> SimilarityResult {
    params.validate();
    let nv = graph.n_states();
    let na = graph.n_action_nodes();

    // delta_S initialised to the maximal distance off-diagonal (S = I),
    // so the recursion converges to the fixpoint from above and the
    // value bound holds at every iterate.
    let mut s = SquareMatrix::identity(nv);
    let mut a_m = SquareMatrix::identity(na);
    apply_base_cases(graph, params, &mut s);

    // Cache successor distributions and expected rewards.
    let dists: Vec<Vec<f64>> = (0..na)
        .map(|ai| {
            let mut p = vec![0.0; nv];
            for &(next, prob, _) in &graph.action_node(ai).edges {
                p[next] += prob;
            }
            p
        })
        .collect();
    let rewards: Vec<f64> = (0..na)
        .map(|ai| graph.action_node(ai).expected_reward())
        .collect();

    let mut iterations = 0;
    let mut converged = false;
    let mut emd_calls = 0;
    let mut ssp_augmentations = 0;

    while iterations < params.max_iterations {
        iterations += 1;

        // Action similarity from the current state similarity.
        let mut a_next = SquareMatrix::identity(na);
        for ai in 0..na {
            for bi in (ai + 1)..na {
                let delta_rwd = (rewards[ai] - rewards[bi]).abs();
                let r = emd_detailed(&dists[ai], &dists[bi], |u, v| 1.0 - s.get(u, v));
                emd_calls += 1;
                ssp_augmentations += r.augmentations;
                let sigma = 1.0 - (1.0 - params.c_a) * delta_rwd - params.c_a * r.distance;
                let sigma = sigma.clamp(0.0, 1.0);
                a_next.set(ai, bi, sigma);
                a_next.set(bi, ai, sigma);
            }
        }

        // State similarity from the new action similarity.
        let mut s_next = SquareMatrix::identity(nv);
        for u in 0..nv {
            for v in (u + 1)..nv {
                if graph.is_absorbing(u) || graph.is_absorbing(v) {
                    continue; // handled by the base cases below
                }
                let h = hausdorff(graph.neighbors(u), graph.neighbors(v), |x, y| {
                    1.0 - a_next.get(x, y)
                });
                let sigma = (params.c_s * (1.0 - h)).clamp(0.0, 1.0);
                s_next.set(u, v, sigma);
                s_next.set(v, u, sigma);
            }
        }
        apply_base_cases(graph, params, &mut s_next);

        let change = s.max_abs_diff(&s_next).max(a_m.max_abs_diff(&a_next));
        s = s_next;
        a_m = a_next;
        if change < params.tolerance {
            converged = true;
            break;
        }
    }

    SimilarityResult {
        sigma_s: s,
        sigma_a: a_m,
        iterations,
        converged,
        emd_calls,
        ssp_augmentations,
    }
}

/// Eq. (3): fix the similarity entries involving absorbing states.
pub(crate) fn apply_base_cases(graph: &MdpGraph, params: &SimilarityParams, s: &mut SquareMatrix) {
    let nv = graph.n_states();
    for u in 0..nv {
        for v in (u + 1)..nv {
            let (au, av) = (graph.is_absorbing(u), graph.is_absorbing(v));
            let sigma = match (au, av) {
                (true, true) => 1.0 - params.absorbing_distance,
                (true, false) | (false, true) => 0.0,
                (false, false) => continue,
            };
            s.set(u, v, sigma);
            s.set(v, u, sigma);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mdp::MdpBuilder;
    use crate::value_iteration::solve;

    /// Two isomorphic branches from a common root; the twin states must
    /// come out maximally similar.
    fn twin_graph() -> MdpGraph {
        let mut b = MdpBuilder::new(5, 2);
        // Root 0 chooses branch 1 or 2 (identical rewards).
        b.transition(0, 0, 1, 1.0, 0.4);
        b.transition(0, 1, 2, 1.0, 0.4);
        // Both branches behave identically toward absorbing states.
        b.transition(1, 0, 3, 1.0, 0.8);
        b.transition(2, 0, 4, 1.0, 0.8);
        MdpGraph::from_mdp(&b.build())
    }

    #[test]
    fn twins_are_maximally_similar() {
        let g = twin_graph();
        let r = structural_similarity(&g, &SimilarityParams::paper(0.5));
        assert!(r.converged);
        assert!(
            r.sigma_s.get(1, 2) > 0.999,
            "twin states should be similar: {}",
            r.sigma_s.get(1, 2)
        );
        assert!(r.delta_s(1, 2) < 1e-3);
    }

    #[test]
    fn absorbing_vs_live_state_is_maximally_distant() {
        let g = twin_graph();
        let r = structural_similarity(&g, &SimilarityParams::paper(0.5));
        assert_eq!(r.sigma_s.get(0, 3), 0.0);
        assert_eq!(r.delta_s(0, 3), 1.0);
    }

    #[test]
    fn absorbing_pair_uses_target_distance() {
        let g = twin_graph();
        let mut p = SimilarityParams::paper(0.5);
        p.absorbing_distance = 0.25;
        let r = structural_similarity(&g, &p);
        assert!((r.sigma_s.get(3, 4) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn matrices_stay_in_unit_interval_and_symmetric() {
        let g = twin_graph();
        let r = structural_similarity(&g, &SimilarityParams::paper(0.3));
        assert!(r.sigma_s.all_within(0.0, 1.0));
        assert!(r.sigma_a.all_within(0.0, 1.0));
        assert!(r.sigma_s.is_symmetric(1e-12));
        assert!(r.sigma_a.is_symmetric(1e-12));
    }

    #[test]
    fn reward_gap_separates_actions() {
        let mut b = MdpBuilder::new(4, 2);
        b.transition(0, 0, 2, 1.0, 0.1);
        b.transition(1, 0, 3, 1.0, 0.9);
        let g = MdpGraph::from_mdp(&b.build());
        let r = structural_similarity(&g, &SimilarityParams::paper(0.5));
        // Two action nodes with very different rewards but same-shape
        // successors (both absorbing, d_uv = 0): distance from rewards.
        assert!(r.delta_a(0, 1) > 0.3, "delta_a = {}", r.delta_a(0, 1));
    }

    #[test]
    fn value_difference_bound_holds() {
        // Randomised MDPs: |V*_u - V*_v| <= delta_S(u,v) / (1 - rho).
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..10 {
            let n = 6;
            let mut b = MdpBuilder::new(n, 3);
            for s in 0..(n - 1) {
                for a in 0..2 {
                    // Two random successors each.
                    for _ in 0..2 {
                        let next = rng.gen_range(0..n);
                        let w = rng.gen_range(0.1..1.0);
                        let r = rng.gen_range(0.0..1.0);
                        b.transition(s, a, next, w, r);
                    }
                }
            }
            let mdp = b.build();
            let rho = 0.6;
            let sol = solve(&mdp, rho, 1e-12);
            let g = MdpGraph::from_mdp(&mdp);
            let sim = structural_similarity(&g, &SimilarityParams::paper(rho));
            assert!(sim.converged, "trial {trial} did not converge");
            for u in 0..n {
                for v in 0..n {
                    let gap = (sol.values[u] - sol.values[v]).abs();
                    let bound = sim.value_bound(u, v, rho);
                    assert!(
                        gap <= bound + 1e-6,
                        "trial {trial}: |V[{u}]-V[{v}]| = {gap} > bound {bound}"
                    );
                }
            }
        }
    }

    #[test]
    fn higher_ca_needs_more_iterations() {
        let g = twin_graph();
        let lo = structural_similarity(&g, &SimilarityParams::paper(0.05));
        let hi = structural_similarity(&g, &SimilarityParams::paper(0.95));
        assert!(
            hi.iterations >= lo.iterations,
            "rho 0.95 took {} iters, rho 0.05 took {}",
            hi.iterations,
            lo.iterations
        );
    }

    #[test]
    fn emd_call_count_is_quadratic_in_action_nodes() {
        let g = twin_graph();
        let r = structural_similarity(&g, &SimilarityParams::paper(0.5));
        let na = g.n_action_nodes();
        let per_iter = na * (na - 1) / 2;
        assert_eq!(r.emd_calls, r.iterations * per_iter);
    }

    #[test]
    #[should_panic(expected = "C_A")]
    fn rejects_ca_of_one() {
        let g = twin_graph();
        let mut p = SimilarityParams::paper(0.5);
        p.c_a = 1.0;
        let _ = structural_similarity(&g, &p);
    }
}
