//! The paper's workload generators.
//!
//! Each generator reproduces the demand *pattern class* of one evaluation
//! workload (Section V). Generation is deterministic given the seed, so
//! every policy in a comparison sees the identical trace.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use capman_device::fsm::Action;
use capman_device::power::Demand;

use crate::trace::{Trace, TraceBuilder};
use crate::zipf::Zipf;

/// The workload families of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// Resource-intensive benchmark; the system is always fully utilised.
    Geekbench,
    /// CPU-intensive benchmark with occasional user interactions.
    Pcmark,
    /// Stable short-video streaming.
    Video,
    /// Mixed batch: `eta` percent PCMark behaviour, the rest Video.
    EtaStatic {
        /// Percentage of PCMark behaviour, `0..=100`.
        eta: u8,
    },
    /// Screen kept on, otherwise idle (Fig. 2a).
    IdleOn,
    /// Phone toggled on/off with the given period (Fig. 2b).
    Toggle {
        /// Full on+off cycle period, seconds.
        period_s: u32,
    },
}

impl WorkloadKind {
    /// The six workloads of Fig. 12, in figure order.
    pub fn fig12() -> [WorkloadKind; 6] {
        [
            WorkloadKind::Geekbench,
            WorkloadKind::Pcmark,
            WorkloadKind::Video,
            WorkloadKind::EtaStatic { eta: 20 },
            WorkloadKind::EtaStatic { eta: 50 },
            WorkloadKind::EtaStatic { eta: 80 },
        ]
    }

    /// Display label used in figures.
    pub fn label(&self) -> String {
        match self {
            WorkloadKind::Geekbench => "Geekbench".into(),
            WorkloadKind::Pcmark => "PCMark".into(),
            WorkloadKind::Video => "Video".into(),
            WorkloadKind::EtaStatic { eta } => format!("eta-{eta}%"),
            WorkloadKind::IdleOn => "Screen-on idle".into(),
            WorkloadKind::Toggle { period_s } => format!("Toggle {period_s}s"),
        }
    }

    /// Parse a workload name as experiment datasets spell them
    /// (`tasks.jsonl` rows, `experiment.yaml` variants). Accepts the
    /// figure labels case-insensitively plus the dashed short forms:
    /// `geekbench`, `pcmark`, `video`, `eta-50` / `eta-50%`, `idle-on`,
    /// `toggle-60` / `Toggle 60s`.
    pub fn parse(name: &str) -> Result<WorkloadKind, String> {
        let lower = name.trim().to_ascii_lowercase();
        let norm = lower.replace(' ', "-");
        match norm.as_str() {
            "geekbench" => return Ok(WorkloadKind::Geekbench),
            "pcmark" => return Ok(WorkloadKind::Pcmark),
            "video" => return Ok(WorkloadKind::Video),
            "idle-on" | "screen-on-idle" => return Ok(WorkloadKind::IdleOn),
            _ => {}
        }
        if let Some(rest) = norm.strip_prefix("eta-") {
            let digits = rest.trim_end_matches('%');
            let eta: u8 = digits
                .parse()
                .map_err(|_| format!("bad eta percentage in workload {name:?}"))?;
            if eta > 100 {
                return Err(format!("eta {eta} out of range in workload {name:?}"));
            }
            return Ok(WorkloadKind::EtaStatic { eta });
        }
        if let Some(rest) = norm.strip_prefix("toggle-") {
            let digits = rest.trim_end_matches('s');
            let period_s: u32 = digits
                .parse()
                .map_err(|_| format!("bad toggle period in workload {name:?}"))?;
            if period_s == 0 {
                return Err(format!("toggle period must be positive in {name:?}"));
            }
            return Ok(WorkloadKind::Toggle { period_s });
        }
        Err(format!(
            "unknown workload {name:?} (expected geekbench, pcmark, video, \
             eta-<pct>, idle-on, or toggle-<seconds>)"
        ))
    }
}

/// Where generated segments land: the batch [`TraceBuilder`] or the
/// streaming cursor's window buffer ([`crate::stream::TraceCursor`]).
///
/// Both sinks receive the *identical* call sequence from
/// [`WorkloadGen`], which is what makes streamed traces bit-identical to
/// batch-materialized ones.
pub(crate) trait SegmentSink {
    /// Append a segment of `duration_s` starting at the current cursor.
    fn push_segment(&mut self, duration_s: f64, demand: Demand, actions: Vec<Action>);
}

impl SegmentSink for TraceBuilder {
    fn push_segment(&mut self, duration_s: f64, demand: Demand, actions: Vec<Action>) {
        self.push(duration_s, demand, actions);
    }
}

/// Per-kind generator parameters hoisted out of the emission loop (the
/// Zipf tables and toggle timings are shared constants, not per-burst
/// state).
#[derive(Debug, Clone)]
enum GenParams {
    Geekbench,
    Pcmark { gap_zipf: Zipf },
    Video,
    EtaStatic { p_pcmark: f64, burst_zipf: Zipf },
    IdleOn,
    Toggle { on_s: f64, off_s: f64 },
}

/// A resumable workload generator: the seeded RNG plus the per-kind
/// parameters, emitting the prelude on the first call and one
/// generator-loop iteration per call afterwards.
///
/// Driving it to the horizon through a [`TraceBuilder`] reproduces
/// [`generate`] exactly; driving it lazily through a window buffer gives
/// the fleet's streaming traces the identical RNG call order, hence
/// bit-identical segments.
#[derive(Debug, Clone)]
pub(crate) struct WorkloadGen {
    params: GenParams,
    rng: StdRng,
    started: bool,
}

impl WorkloadGen {
    /// Build the generator for `kind` from the trace seed.
    ///
    /// # Panics
    ///
    /// Panics if `eta > 100` or a toggle period is under 2 s.
    pub(crate) fn new(kind: WorkloadKind, seed: u64) -> Self {
        let params = match kind {
            WorkloadKind::Geekbench => GenParams::Geekbench,
            WorkloadKind::Pcmark => GenParams::Pcmark {
                gap_zipf: Zipf::new(6, 1.1),
            },
            WorkloadKind::Video => GenParams::Video,
            WorkloadKind::EtaStatic { eta } => {
                assert!(eta <= 100, "eta is a percentage");
                GenParams::EtaStatic {
                    p_pcmark: f64::from(eta) / 100.0,
                    burst_zipf: Zipf::new(5, 1.2),
                }
            }
            WorkloadKind::IdleOn => GenParams::IdleOn,
            WorkloadKind::Toggle { period_s } => {
                assert!(period_s >= 2, "toggle period must be at least 2 s");
                let period = f64::from(period_s);
                let on_s = (period / 2.0).max(1.0);
                let off_s = (period - on_s).max(1.0);
                GenParams::Toggle { on_s, off_s }
            }
        };
        WorkloadGen {
            params,
            rng: StdRng::seed_from_u64(seed ^ 0xCA9A_u64.rotate_left(17)),
            started: false,
        }
    }

    /// Emit the next burst of segments into `sink`: the prelude on the
    /// first call (possibly empty), one loop iteration per call after.
    /// Every step call appends at least one segment.
    pub(crate) fn emit<S: SegmentSink>(&mut self, sink: &mut S) {
        let rng = &mut self.rng;
        if !self.started {
            self.started = true;
            match &self.params {
                GenParams::Geekbench => geekbench_prelude(sink, rng),
                GenParams::Pcmark { .. } => pcmark_prelude(sink),
                GenParams::Video => video_prelude(sink),
                GenParams::EtaStatic { .. } => eta_static_prelude(sink),
                GenParams::IdleOn => idle_on_prelude(sink),
                GenParams::Toggle { .. } => {}
            }
        } else {
            match &self.params {
                GenParams::Geekbench => geekbench_step(sink, rng),
                GenParams::Pcmark { gap_zipf } => pcmark_step(sink, gap_zipf, rng),
                GenParams::Video => video_step(sink, rng),
                GenParams::EtaStatic {
                    p_pcmark,
                    burst_zipf,
                } => eta_static_step(sink, *p_pcmark, burst_zipf, rng),
                GenParams::IdleOn => idle_on_step(sink),
                GenParams::Toggle { on_s, off_s } => toggle_step(sink, *on_s, *off_s),
            }
        }
    }
}

/// Generate a trace of at least `horizon_s` seconds for the given kind.
///
/// # Panics
///
/// Panics if `horizon_s` is not positive or `eta > 100`.
pub fn generate(kind: WorkloadKind, horizon_s: f64, seed: u64) -> Trace {
    assert!(horizon_s > 0.0, "horizon must be positive");
    let mut gen = WorkloadGen::new(kind, seed);
    let mut b = TraceBuilder::new();
    gen.emit(&mut b); // prelude
    while b.cursor_s() < horizon_s {
        gen.emit(&mut b);
    }
    b.build(kind.label())
}

fn full_demand(rng: &mut StdRng) -> Demand {
    Demand {
        cpu_util: rng.gen_range(94.0..100.0),
        freq_index: usize::MAX, // top frequency (clamped by the model)
        brightness: 200.0,
        packet_rate: rng.gen_range(5.0..20.0),
    }
}

/// Geekbench prelude: saturating compute from the first second.
fn geekbench_prelude<S: SegmentSink>(b: &mut S, rng: &mut StdRng) {
    b.push_segment(
        1.0,
        full_demand(rng),
        vec![Action::ScreenOn, Action::AppLaunch],
    );
}

/// Geekbench: saturating compute, screen on, sporadic result uploads.
fn geekbench_step<S: SegmentSink>(b: &mut S, rng: &mut StdRng) {
    let dur = rng.gen_range(15.0..40.0);
    let upload = rng.gen_bool(0.15);
    let mut d = full_demand(rng);
    let mut actions = vec![Action::CpuBusy];
    if upload {
        d.packet_rate = rng.gen_range(120.0..200.0);
        actions.push(Action::NetSendStart);
    } else {
        actions.push(Action::NetStop);
    }
    b.push_segment(dur, d, actions);
}

/// PCMark prelude: a moderate compute opening segment.
fn pcmark_prelude<S: SegmentSink>(b: &mut S) {
    b.push_segment(
        1.0,
        Demand {
            cpu_util: 70.0,
            freq_index: usize::MAX,
            brightness: 180.0,
            packet_rate: 3.0,
        },
        vec![Action::ScreenOn, Action::AppLaunch],
    );
}

/// PCMark: CPU-intensive phases with occasional user interactions whose
/// gaps follow a Zipf law (the paper's skewed arrivals).
fn pcmark_step<S: SegmentSink>(b: &mut S, gap_zipf: &Zipf, rng: &mut StdRng) {
    // A compute phase.
    let phase = Demand {
        cpu_util: rng.gen_range(55.0..85.0),
        freq_index: usize::MAX,
        brightness: 180.0,
        packet_rate: rng.gen_range(0.0..8.0),
    };
    let gap = gap_zipf.sample(rng) as f64 * rng.gen_range(4.0..9.0);
    b.push_segment(gap, phase, vec![Action::CpuBusy]);
    // An interaction surge: app launch, full utilisation, burst of
    // traffic — the V-edge trigger.
    let surge = Demand {
        cpu_util: 100.0,
        freq_index: usize::MAX,
        brightness: 220.0,
        packet_rate: rng.gen_range(90.0..150.0),
    };
    b.push_segment(
        rng.gen_range(1.5..4.0),
        surge,
        vec![Action::AppLaunch, Action::NetReceiveStart],
    );
    // Settle.
    b.push_segment(
        rng.gen_range(2.0..5.0),
        Demand {
            cpu_util: 40.0,
            freq_index: 2,
            brightness: 180.0,
            packet_rate: 2.0,
        },
        vec![Action::NetStop, Action::CpuIdle],
    );
}

/// Video prelude: app start plus initial buffering.
fn video_prelude<S: SegmentSink>(b: &mut S) {
    b.push_segment(
        2.0,
        Demand {
            cpu_util: 45.0,
            freq_index: usize::MAX,
            brightness: 220.0,
            packet_rate: 70.0,
        },
        vec![Action::ScreenOn, Action::AppLaunch, Action::NetReceiveStart],
    );
}

/// Video: the paper's workload "keeps playing short videos" — steady
/// streaming stretches punctuated by a per-video start spike (decoder
/// spin-up plus prefetch burst), the V-edge trigger of Fig. 3(a).
fn video_step<S: SegmentSink>(b: &mut S, rng: &mut StdRng) {
    // One short video: a start spike, then stable playback.
    let spike = Demand {
        cpu_util: 100.0,
        freq_index: usize::MAX,
        brightness: 220.0,
        packet_rate: rng.gen_range(150.0..220.0),
    };
    b.push_segment(
        rng.gen_range(2.0..4.5),
        spike,
        vec![Action::AppLaunch, Action::NetSendStart],
    );
    let stable = Demand {
        cpu_util: rng.gen_range(26.0..34.0),
        freq_index: 2,
        brightness: 220.0,
        packet_rate: rng.gen_range(55.0..70.0),
    };
    b.push_segment(
        rng.gen_range(14.0..40.0),
        stable,
        vec![Action::NetReceiveStart, Action::CpuBusy],
    );
}

/// eta-Static prelude: a calm mixed-use opening segment.
fn eta_static_prelude<S: SegmentSink>(b: &mut S) {
    b.push_segment(
        1.0,
        Demand {
            cpu_util: 40.0,
            freq_index: 2,
            brightness: 200.0,
            packet_rate: 30.0,
        },
        vec![Action::ScreenOn, Action::AppLaunch],
    );
}

/// eta-Static: Zipf-skewed interleaving of PCMark-style bursts and
/// Video-style stretches in the requested ratio.
fn eta_static_step<S: SegmentSink>(b: &mut S, p_pcmark: f64, burst_zipf: &Zipf, rng: &mut StdRng) {
    if rng.gen_bool(p_pcmark) {
        // PCMark-like: surge then settle (short, bursty).
        let intensity = burst_zipf.sample(rng) as f64;
        let surge = Demand {
            cpu_util: (70.0 + 6.0 * intensity).min(100.0),
            freq_index: usize::MAX,
            brightness: 210.0,
            packet_rate: 20.0 * intensity,
        };
        b.push_segment(
            rng.gen_range(1.5..4.5),
            surge,
            vec![Action::AppLaunch, Action::NetReceiveStart],
        );
        b.push_segment(
            rng.gen_range(3.0..8.0),
            Demand {
                cpu_util: 45.0,
                freq_index: 3,
                brightness: 200.0,
                packet_rate: 5.0,
            },
            vec![Action::NetStop, Action::CpuIdle],
        );
    } else {
        // Video-like: stable stretch.
        b.push_segment(
            rng.gen_range(20.0..50.0),
            Demand {
                cpu_util: rng.gen_range(26.0..34.0),
                freq_index: 2,
                brightness: 220.0,
                packet_rate: rng.gen_range(55.0..70.0),
            },
            vec![Action::NetReceiveStart, Action::CpuBusy],
        );
    }
}

/// Screen-on idle prelude (Fig. 2a): the panel lights up.
fn idle_on_prelude<S: SegmentSink>(b: &mut S) {
    b.push_segment(
        1.0,
        Demand {
            cpu_util: 3.0,
            freq_index: 0,
            brightness: 180.0,
            packet_rate: 0.0,
        },
        vec![Action::ScreenOn],
    );
}

/// Screen-on idle (Fig. 2a): the panel burns, the CPU naps.
fn idle_on_step<S: SegmentSink>(b: &mut S) {
    b.push_segment(
        60.0,
        Demand {
            cpu_util: 3.0,
            freq_index: 0,
            brightness: 180.0,
            packet_rate: 0.0,
        },
        vec![Action::CpuIdle],
    );
}

/// Phone on/off toggling at a fixed period (Fig. 2b): each wake is a
/// short full-power surge, each sleep a suspend. No prelude.
fn toggle_step<S: SegmentSink>(b: &mut S, on_s: f64, off_s: f64) {
    b.push_segment(
        on_s,
        Demand {
            cpu_util: 100.0,
            freq_index: usize::MAX,
            brightness: 200.0,
            packet_rate: 40.0,
        },
        vec![Action::Wake, Action::ScreenOn, Action::NetReceiveStart],
    );
    b.push_segment(
        off_s,
        Demand {
            cpu_util: 0.0,
            freq_index: 0,
            brightness: 0.0,
            packet_rate: 0.0,
        },
        vec![Action::ScreenOff, Action::Suspend],
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        for kind in WorkloadKind::fig12() {
            let a = generate(kind, 1000.0, 7);
            let b = generate(kind, 1000.0, 7);
            assert_eq!(a, b, "{kind:?} must be deterministic");
            let c = generate(kind, 1000.0, 8);
            assert_ne!(a, c, "{kind:?} should vary with the seed");
        }
    }

    #[test]
    fn horizon_is_covered() {
        for kind in WorkloadKind::fig12() {
            let t = generate(kind, 500.0, 3);
            assert!(t.horizon_s() >= 500.0, "{kind:?} too short");
        }
    }

    #[test]
    fn geekbench_is_saturating() {
        let t = generate(WorkloadKind::Geekbench, 2000.0, 1);
        assert!(
            t.mean_cpu_util() > 90.0,
            "Geekbench must saturate, got {}",
            t.mean_cpu_util()
        );
    }

    #[test]
    fn video_is_mostly_stable_playback() {
        let t = generate(WorkloadKind::Video, 2000.0, 1);
        let m = t.mean_cpu_util();
        assert!(m > 20.0 && m < 55.0, "video util {m}");
        // Playback dominates: most of the time is spent in low-CPU
        // streaming segments even though each short video starts with a
        // spike.
        let stable_time: f64 = t
            .segments()
            .iter()
            .filter(|s| s.demand.cpu_util < 50.0)
            .map(|s| s.duration_s)
            .sum();
        assert!(stable_time / t.horizon_s() > 0.75);
        // PCMark surges more often than Video.
        let pcmark = generate(WorkloadKind::Pcmark, 2000.0, 1);
        assert!(pcmark.surge_count(30.0) > t.surge_count(30.0));
    }

    #[test]
    fn pcmark_has_interaction_surges() {
        let t = generate(WorkloadKind::Pcmark, 2000.0, 5);
        assert!(t.surge_count(30.0) >= 10);
        let m = t.mean_cpu_util();
        assert!(m > 40.0 && m < 95.0, "pcmark util {m}");
    }

    #[test]
    fn eta_interpolates_between_video_and_pcmark() {
        let lo = generate(WorkloadKind::EtaStatic { eta: 20 }, 4000.0, 2);
        let hi = generate(WorkloadKind::EtaStatic { eta: 80 }, 4000.0, 2);
        assert!(
            hi.surge_count(25.0) > lo.surge_count(25.0),
            "more PCMark share means more surges: {} vs {}",
            hi.surge_count(25.0),
            lo.surge_count(25.0)
        );
        assert!(hi.mean_cpu_util() > lo.mean_cpu_util());
    }

    #[test]
    fn toggle_alternates_wake_and_suspend() {
        let t = generate(WorkloadKind::Toggle { period_s: 60 }, 600.0, 1);
        let wakes = t
            .segments()
            .iter()
            .filter(|s| s.actions.contains(&Action::Wake))
            .count();
        let suspends = t
            .segments()
            .iter()
            .filter(|s| s.actions.contains(&Action::Suspend))
            .count();
        assert_eq!(wakes, suspends);
        assert!(wakes >= 10);
    }

    #[test]
    fn faster_toggle_means_more_surges() {
        let slow = generate(WorkloadKind::Toggle { period_s: 60 }, 3600.0, 1);
        let fast = generate(WorkloadKind::Toggle { period_s: 4 }, 3600.0, 1);
        assert!(fast.surge_count(50.0) > slow.surge_count(50.0) * 5);
    }

    #[test]
    fn idle_on_is_quiet() {
        let t = generate(WorkloadKind::IdleOn, 1200.0, 1);
        assert!(t.mean_cpu_util() < 10.0);
        assert_eq!(t.surge_count(30.0), 0);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<String> = WorkloadKind::fig12().iter().map(|k| k.label()).collect();
        let mut unique = labels.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), labels.len());
    }

    #[test]
    #[should_panic(expected = "percentage")]
    fn rejects_eta_above_100() {
        let _ = generate(WorkloadKind::EtaStatic { eta: 101 }, 100.0, 0);
    }

    #[test]
    fn parse_round_trips_every_fig12_label() {
        for kind in WorkloadKind::fig12() {
            assert_eq!(WorkloadKind::parse(&kind.label()), Ok(kind));
        }
        assert_eq!(
            WorkloadKind::parse("Screen-on idle"),
            Ok(WorkloadKind::IdleOn)
        );
        assert_eq!(
            WorkloadKind::parse("Toggle 60s"),
            Ok(WorkloadKind::Toggle { period_s: 60 })
        );
    }

    #[test]
    fn parse_accepts_short_forms_and_rejects_junk() {
        assert_eq!(
            WorkloadKind::parse("eta-50"),
            Ok(WorkloadKind::EtaStatic { eta: 50 })
        );
        assert_eq!(WorkloadKind::parse("idle-on"), Ok(WorkloadKind::IdleOn));
        assert_eq!(
            WorkloadKind::parse("toggle-30"),
            Ok(WorkloadKind::Toggle { period_s: 30 })
        );
        assert!(WorkloadKind::parse("eta-150").is_err());
        assert!(WorkloadKind::parse("toggle-0").is_err());
        assert!(WorkloadKind::parse("quake").is_err());
    }
}
