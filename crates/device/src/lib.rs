//! Smartphone device simulator for the CAPMAN reproduction.
//!
//! The paper reduces the phone to a set of per-component power-state
//! machines (Fig. 7) whose transitions are triggered by system calls and
//! binder messages, plus per-component power models (Table II)
//! parameterised by measured constants (Table III). This crate implements
//! exactly that reduction:
//!
//! * [`states`] — the CPU / screen / WiFi / TEC / battery power states and
//!   the composite [`states::DeviceState`] with a dense index for MDP use.
//! * [`constants`] — the measured average state powers of Table III.
//! * [`power`] — the component power models of Table II (linear CPU model,
//!   brightness-linear screen, piecewise-linear WiFi, TEC).
//! * [`fsm`] — the action vocabulary (system-call classes) and the state
//!   transition function.
//! * [`syscall`] — the raw system-call table (200+ calls, as recorded in
//!   the paper) mapped onto semantic action classes.
//! * [`phone`] — the three evaluation phones (Nexus, Honor, Lenovo).
//!
//! # Example
//!
//! ```
//! use capman_device::states::{CpuState, DeviceState};
//! use capman_device::fsm::Action;
//! use capman_device::phone::PhoneProfile;
//!
//! let phone = PhoneProfile::nexus();
//! let mut state = DeviceState::asleep();
//! state = state.apply(Action::ScreenOn);
//! assert_eq!(state.cpu, CpuState::C0);
//! let power = phone.power_model().device_power_mw(&state, &Default::default());
//! assert!(power > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod constants;
pub mod fsm;
pub mod governor;
pub mod phone;
pub mod power;
pub mod states;
pub mod syscall;

pub use fsm::Action;
pub use phone::PhoneProfile;
pub use power::{Demand, PowerModel};
pub use states::DeviceState;
