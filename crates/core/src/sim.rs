//! The discrete-time simulation engine.
//!
//! One discharge cycle couples five models per step: the workload trace
//! fires system-call actions that move the device power-state machine;
//! the policy picks the battery; the component power models produce the
//! demand; the pack serves it (with switching and filter losses); and the
//! thermal network integrates the component heat, with the TEC pumping
//! the CPU hot spot when the 45 degC threshold trips.
//!
//! Service ends when the pack can no longer serve the demand — either a
//! sustained continuous shortfall or a high failure rate over a rolling
//! window (a phone that browns out on every app launch is dead to its
//! user even if it can still idle).

use std::collections::VecDeque;

use capman_battery::pack::BatteryPack;
use capman_device::fsm::Action;
use capman_device::phone::PhoneProfile;
use capman_device::power::PowerModel;
use capman_device::states::{DeviceState, TecState};
use capman_thermal::network::{NodeId, ThermalNetwork};
use capman_thermal::tec::{Tec, TecController, TecStep};
use capman_workload::Trace;

use crate::actuator::Actuator;
use crate::config::SimConfig;
use crate::metrics::{EndReason, Outcome};
use crate::policy::{DecisionContext, Observation, Policy};
use crate::telemetry::{Sample, Telemetry};

/// Rolling window for the failure-rate end condition, seconds.
const FAIL_WINDOW_S: f64 = 120.0;
/// Failure fraction within the rolling window that ends the service.
const FAIL_FRACTION: f64 = 0.10;
/// Share of CPU power concentrated on the die hot spot.
const HOTSPOT_POWER_SHARE: f64 = 0.45;

/// A configured discharge-cycle simulation.
pub struct Simulator {
    phone: PhoneProfile,
    model: PowerModel,
    trace: Trace,
    pack: BatteryPack,
    policy: Box<dyn Policy>,
    config: SimConfig,
}

impl Simulator {
    /// Assemble a simulation.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(
        phone: PhoneProfile,
        trace: Trace,
        pack: BatteryPack,
        policy: Box<dyn Policy>,
        config: SimConfig,
    ) -> Self {
        config.validate();
        let model = phone.power_model();
        Simulator {
            phone,
            model,
            trace,
            pack,
            policy,
            config,
        }
    }

    /// Run one discharge cycle to completion.
    pub fn run(mut self) -> Outcome {
        let dt = self.config.dt_s;
        let mut thermal = ThermalNetwork::phone_at_ambient(self.config.ambient_c);
        let tec = Tec::ate31();
        let mut tec_ctl = TecController::new(self.config.tec_threshold_c, 2.0);
        let mut actuator = Actuator::new();
        let mut state = DeviceState::asleep();
        let mut telemetry = Telemetry::new();

        let mut t = 0.0;
        let mut last_power_w = 0.0;
        let mut last_sample_t = f64::NEG_INFINITY;

        // Accumulators.
        let mut energy_delivered_j = 0.0;
        let mut energy_heat_j = 0.0;
        let mut work_served = 0.0;
        let mut tec_on_s = 0.0;
        let mut tec_energy_j = 0.0;
        let mut max_hotspot_c = f64::NEG_INFINITY;
        let mut hotspot_sum = 0.0;
        let mut steps: u64 = 0;

        // End-condition trackers.
        let mut consecutive_fail_s = 0.0;
        let window_len = (FAIL_WINDOW_S / dt).round().max(1.0) as usize;
        let mut fail_window: VecDeque<bool> = VecDeque::with_capacity(window_len);
        let mut fails_in_window = 0usize;

        let end_reason = loop {
            if t >= self.config.max_horizon_s {
                break EndReason::HorizonReached;
            }
            if self.pack.is_depleted() {
                break EndReason::PackDepleted;
            }

            // 1. Fire the trace's boundary actions.
            let prev_state = state;
            let mut fired: Vec<Action> = Vec::new();
            for seg in self.trace.segments_starting_in(t, t + dt) {
                for &a in &seg.actions {
                    state = state.apply(a);
                    fired.push(a);
                }
            }

            // 2. Thermal governor: TEC on/off from the hot-spot reading.
            let hotspot_c = thermal.temp_c(NodeId::HotSpot);
            let tec_on = self.config.tec_enabled && tec_ctl.update(hotspot_c);
            state.tec = if tec_on { TecState::On } else { TecState::Off };

            // 3. Battery decision.
            let ctx = DecisionContext {
                time_s: t,
                state,
                actions: &fired,
                last_power_w,
                big_soc: self.pack.big().soc(),
                little_soc: self.pack.little().map(|c| c.soc()).unwrap_or(1.0),
                big_usable: self.pack.big().is_usable(),
                little_usable: self.pack.little().map(|c| c.is_usable()).unwrap_or(false),
                big_head: self.pack.big().available_head(),
                little_head: self
                    .pack
                    .little()
                    .map(|c| c.available_head())
                    .unwrap_or(0.0),
                hotspot_c,
                tec_on,
                dual: self.pack.little().is_some(),
            };
            let target = self.policy.decide(&ctx);
            for cal in self.policy.drain_calibrations() {
                telemetry.push_calibration(cal);
            }
            if let Some(switch_action) = actuator.apply(&mut self.pack, target) {
                state = state.apply(switch_action);
                fired.push(switch_action);
            } else {
                state.battery = self.pack.active();
            }

            // 4. Demand and thermal throttling.
            let mut demand = self.trace.at(t).demand;
            let throttled = hotspot_c > self.config.throttle_threshold_c;
            if throttled {
                demand.cpu_util *= self.config.throttle_factor;
            }
            let device_mw = self.model.device_power_mw(&state, &demand);

            // 5. TEC physics (pump before integrating the network).
            let tec_step = if tec_on {
                tec.pump(
                    &mut thermal,
                    NodeId::HotSpot,
                    NodeId::Shell,
                    tec.rated_current_a(),
                )
            } else {
                TecStep::off()
            };
            let total_w = device_mw / 1000.0 + tec_step.power_w;

            // 6. The pack serves the load.
            let battery_c = thermal.temp_c(NodeId::Battery);
            let pstep = self.pack.step(total_w, dt, battery_c);

            // 7. Component heat into the thermal network.
            let cpu_w = self.model.cpu().power_mw(state.cpu, &demand) / 1000.0;
            thermal.inject(NodeId::Cpu, cpu_w * (1.0 - HOTSPOT_POWER_SHARE));
            thermal.inject(NodeId::HotSpot, cpu_w * HOTSPOT_POWER_SHARE);
            thermal.inject(
                NodeId::Screen,
                self.model.screen().power_mw(state.screen, &demand) / 1000.0,
            );
            thermal.inject(
                NodeId::Shell,
                self.model.wifi().power_mw(state.wifi, &demand) / 1000.0,
            );
            thermal.inject(NodeId::Battery, pstep.heat_w);
            thermal.step(dt);

            // 8. Bookkeeping.
            let fail =
                total_w > 0.0 && pstep.shortfall_w > self.config.shortfall_tolerance * total_w;
            energy_delivered_j += pstep.delivered_w * dt;
            energy_heat_j += pstep.heat_w * dt;
            if !fail {
                let freq_share = (demand.freq_index.min(self.phone.n_freqs() - 1) + 1) as f64
                    / self.phone.n_freqs() as f64;
                work_served += demand.cpu_util * freq_share * dt;
            }
            if tec_on {
                tec_on_s += dt;
                tec_energy_j += tec_step.power_w * dt;
            }
            let spot = thermal.temp_c(NodeId::HotSpot);
            max_hotspot_c = max_hotspot_c.max(spot);
            hotspot_sum += spot;
            steps += 1;

            // 9. Feed the policy.
            let reward = if fail {
                0.0
            } else {
                let spent = pstep.delivered_w + pstep.heat_w;
                if spent > 0.0 {
                    (pstep.delivered_w / spent).clamp(0.0, 1.0)
                } else {
                    1.0
                }
            };
            self.policy.observe(&Observation {
                time_s: t + dt,
                prev_state,
                action: fired.first().copied().unwrap_or(Action::TimerTick),
                new_state: state,
                reward,
                power_w: total_w,
            });
            last_power_w = total_w;

            // 10. Telemetry.
            if t - last_sample_t >= self.config.sample_every_s {
                last_sample_t = t;
                telemetry.push(Sample {
                    time_s: t,
                    power_mw: total_w * 1000.0,
                    hotspot_c: spot,
                    shell_c: thermal.temp_c(NodeId::Shell),
                    battery_c: thermal.temp_c(NodeId::Battery),
                    big_soc: self.pack.big().soc(),
                    little_soc: self.pack.little().map(|c| c.soc()).unwrap_or(1.0),
                    active: pstep.active,
                    tec_on,
                    voltage_v: pstep.voltage_v,
                });
            }

            // 11. End conditions.
            if fail {
                consecutive_fail_s += dt;
            } else {
                consecutive_fail_s = 0.0;
            }
            if fail_window.len() == window_len && fail_window.pop_front() == Some(true) {
                fails_in_window -= 1;
            }
            fail_window.push_back(fail);
            if fail {
                fails_in_window += 1;
            }
            let window_full = fail_window.len() == window_len;
            if consecutive_fail_s >= self.config.shortfall_window_s
                || (window_full && fails_in_window as f64 / window_len as f64 > FAIL_FRACTION)
            {
                break EndReason::SustainedShortfall;
            }

            t += dt;
        };

        Outcome {
            policy: self.policy.name().to_string(),
            workload: self.trace.name().to_string(),
            phone: self.phone.name.to_string(),
            service_time_s: t,
            end_reason,
            energy_delivered_j,
            energy_heat_j,
            work_served,
            switches: actuator.switches(),
            big_active_s: self.pack.big_active_s(),
            little_active_s: self.pack.little_active_s(),
            big_delivered_j: self.pack.big().delivered_j(),
            little_delivered_j: self.pack.little().map(|c| c.delivered_j()).unwrap_or(0.0),
            tec_on_s,
            tec_energy_j,
            max_hotspot_c: if steps > 0 {
                max_hotspot_c
            } else {
                self.config.ambient_c
            },
            mean_hotspot_c: if steps > 0 {
                hotspot_sum / steps as f64
            } else {
                self.config.ambient_c
            },
            scheduler_overhead_us: self.policy.overhead_us(),
            recalibrations: self.policy.recalibrations(),
            telemetry,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{DualPolicy, PracticePolicy};
    use capman_battery::chemistry::Chemistry;
    use capman_workload::{generate, WorkloadKind};

    fn quick_config() -> SimConfig {
        SimConfig {
            max_horizon_s: 2000.0,
            ..SimConfig::paper()
        }
    }

    #[test]
    fn idle_cycle_survives_the_short_horizon() {
        let trace = generate(WorkloadKind::IdleOn, 2500.0, 1);
        let sim = Simulator::new(
            PhoneProfile::nexus(),
            trace,
            BatteryPack::single(Chemistry::Nca, 5.0),
            Box::new(PracticePolicy),
            quick_config(),
        );
        let o = sim.run();
        assert_eq!(o.end_reason, EndReason::HorizonReached);
        assert!(o.energy_delivered_j > 0.0);
        assert!(o.work_served > 0.0);
        assert_eq!(o.switches, 0);
    }

    #[test]
    fn tiny_battery_dies_quickly_under_load() {
        let trace = generate(WorkloadKind::Geekbench, 10_000.0, 1);
        let config = SimConfig {
            max_horizon_s: 10_000.0,
            ..SimConfig::paper()
        };
        let sim = Simulator::new(
            PhoneProfile::nexus(),
            trace,
            BatteryPack::single(Chemistry::Nca, 0.15),
            Box::new(PracticePolicy),
            config,
        );
        let o = sim.run();
        assert_ne!(o.end_reason, EndReason::HorizonReached);
        assert!(o.service_time_s < 10_000.0);
    }

    #[test]
    fn dual_policy_actually_switches() {
        let trace = generate(WorkloadKind::Pcmark, 2500.0, 2);
        let sim = Simulator::new(
            PhoneProfile::nexus(),
            trace,
            BatteryPack::paper_prototype(),
            Box::new(DualPolicy),
            quick_config(),
        );
        let o = sim.run();
        assert!(o.little_active_s > 0.0);
        assert!(o.switches >= 1);
    }

    #[test]
    fn telemetry_is_sampled() {
        let trace = generate(WorkloadKind::Video, 2500.0, 3);
        let sim = Simulator::new(
            PhoneProfile::nexus(),
            trace,
            BatteryPack::paper_prototype(),
            Box::new(DualPolicy),
            quick_config(),
        );
        let o = sim.run();
        assert!(o.telemetry.len() >= 10);
        assert!(o.telemetry.mean_power_mw() > 100.0);
    }

    #[test]
    fn capman_calibration_telemetry_reaches_the_outcome() {
        use crate::capman::CapmanPolicy;
        let trace = generate(WorkloadKind::Pcmark, 3000.0, 5);
        let config = SimConfig {
            max_horizon_s: 3000.0,
            ..SimConfig::paper()
        };
        let sim = Simulator::new(
            PhoneProfile::nexus(),
            trace,
            BatteryPack::paper_prototype(),
            Box::new(CapmanPolicy::new(1.0)),
            config,
        );
        let o = sim.run();
        assert!(o.recalibrations >= 1, "CAPMAN should calibrate");
        assert_eq!(
            o.telemetry.calibrations().len() as u64,
            o.recalibrations,
            "every calibration must be drained into telemetry"
        );
        for cal in o.telemetry.calibrations() {
            assert!(cal.sweeps >= 1);
            assert!(cal.wall_us > 0.0);
            assert!(cal.graph_action_nodes >= 1);
        }
    }

    #[test]
    fn heavy_load_heats_the_hot_spot() {
        let trace = generate(WorkloadKind::Geekbench, 2500.0, 4);
        let sim = Simulator::new(
            PhoneProfile::nexus(),
            trace,
            BatteryPack::paper_prototype(),
            Box::new(DualPolicy),
            quick_config(),
        );
        let o = sim.run();
        assert!(
            o.max_hotspot_c > 40.0,
            "Geekbench should heat the spot, got {}",
            o.max_hotspot_c
        );
    }
}
